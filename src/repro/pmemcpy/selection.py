"""First-class selections: the I/O contract beyond ``(offsets, dims)``.

A :class:`Selection` names a subset of a variable's global index space plus
an order for laying those elements out in a dense result buffer.  Two
concrete kinds, mirroring HDF5 dataspace selections (and the start/stride/
count subarray contract of the Parallel netCDF interface):

- :class:`Hyperslab` — ``start``/``stride``/``count``/``block`` per axis,
  h5py-style.  ``count`` blocks of ``block`` consecutive indices each,
  ``stride`` apart, beginning at ``start``.  A plain contiguous block is
  the special case ``stride == block == 1``
  (:meth:`Hyperslab.from_block`).
- :class:`PointSelection` — an explicit list of points, gathered into a
  1-d result in list order (openPMD-style particle reads).

The algebra every storage layer builds on:

- *normalization* — :meth:`Selection.normalized` bounds-checks against the
  variable's global dims and materializes defaults;
- *chunk intersection* — :meth:`Selection.intersects` /
  :meth:`Selection.overlap_count` restrict a selection to one stored
  chunk's box without enumerating elements;
- *row segments* — :meth:`Selection.runs` iterates the maximal contiguous
  (row-major) element runs of the selection inside a box, each paired with
  its contiguous destination offset in the result buffer.  This is what
  the zero-staging partial-read path feeds to ``Source.read_at`` and what
  the file-library baselines turn into strided MPI-IO extents;
- *numpy transfer* — :meth:`Selection.scatter_into` /
  :meth:`Selection.gather_from` move elements between a decoded region
  array and the (possibly non-contiguously strided) result buffer using
  plain numpy indexing;
- *composition* — :meth:`Hyperslab.compose` applies an inner selection to
  the element space of an outer one, yielding a selection in global
  coordinates (where the combination stays representable).

Selections are immutable; every operation returns new objects.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..errors import DimensionMismatchError, PmemcpyError


@dataclass(frozen=True)
class Run:
    """One contiguous row segment of a selection inside a region box.

    ``src`` is the flat element offset inside the region (row-major over
    the region's dims); ``dst`` the flat element offset in the selection's
    dense result; ``nelems`` elements are contiguous on *both* sides.
    """

    src: int
    dst: int
    nelems: int


def _as_axis_tuple(value, rank: int, name: str, default: int) -> tuple[int, ...]:
    if value is None:
        return (default,) * rank
    if np.isscalar(value):
        value = (value,) * rank
    out = tuple(int(v) for v in value)
    if len(out) != rank:
        raise DimensionMismatchError(
            f"selection {name} rank {len(out)} != start rank {rank}"
        )
    return out


class Selection(ABC):
    """A subset of a variable's global index space (see module docstring)."""

    #: number of axes of the *global* space the selection indexes
    rank: int
    #: shape of the dense result buffer the selection fills
    out_shape: tuple[int, ...]

    @property
    def nelems(self) -> int:
        return math.prod(self.out_shape)

    @abstractmethod
    def normalized(self, global_dims) -> "Selection":
        """Bounds-check against ``global_dims``; returns the selection."""

    @abstractmethod
    def bbox(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Tight bounding box as ``(offsets, dims)`` in global coords."""

    @abstractmethod
    def overlap_count(self, offsets, dims) -> int:
        """Number of selected elements inside the box ``offsets``/``dims``."""

    def intersects(self, offsets, dims) -> bool:
        return self.overlap_count(offsets, dims) > 0

    @abstractmethod
    def runs(self, offsets, dims) -> Iterator[Run]:
        """Maximal contiguous row segments inside the box (see :class:`Run`)."""

    @abstractmethod
    def scatter_into(self, out: np.ndarray, region: np.ndarray, offsets) -> int:
        """Copy the selected elements of ``region`` (a box at ``offsets``
        with ``region.shape`` dims) into the result buffer ``out`` (shaped
        :attr:`out_shape`, any strides).  Returns elements copied."""

    @abstractmethod
    def gather_from(self, data: np.ndarray, region: np.ndarray, offsets) -> int:
        """Inverse of :meth:`scatter_into`: write ``data`` (shaped
        :attr:`out_shape`) into the selected positions of ``region``."""


# ---------------------------------------------------------------------------
# Hyperslab
# ---------------------------------------------------------------------------

class Hyperslab(Selection):
    """h5py-style regular hyperslab: per axis, ``count`` blocks of
    ``block`` consecutive indices each, ``stride`` apart, from ``start``.

    ``stride`` defaults to ``block`` (back-to-back blocks); ``block``
    defaults to 1.  HDF5's constraint ``stride >= block`` (blocks may not
    overlap) is enforced.  A 0-rank hyperslab selects the single element
    of a 0-d variable.
    """

    __slots__ = ("start", "stride", "count", "block", "out_shape", "rank")

    def __init__(self, start, count, stride=None, block=None):
        start = tuple(int(s) for s in (start if not np.isscalar(start) else (start,)))
        rank = len(start)
        count = _as_axis_tuple(count, rank, "count", 1)
        block = _as_axis_tuple(block, rank, "block", 1)
        stride = _as_axis_tuple(stride, rank, "stride", 0)
        # default stride = block (back-to-back blocks)
        stride = tuple(st if st else b for st, b in zip(stride, block))
        for s, st, c, b in zip(start, stride, count, block):
            if s < 0 or c < 0 or b < 1 or st < 1:
                raise DimensionMismatchError(
                    f"bad hyperslab axis (start={s}, stride={st}, "
                    f"count={c}, block={b})"
                )
            if st < b:
                raise DimensionMismatchError(
                    f"hyperslab blocks overlap: stride {st} < block {b}"
                )
        # canonical form: back-to-back blocks (and a single block) are one
        # contiguous unit-block run, so equality and composition see
        # through equivalent spellings
        canon = []
        for s, st, c, b in zip(start, stride, count, block):
            if b > 1 and (st == b or c == 1):
                canon.append((s, 1, c * b, 1))
            else:
                canon.append((s, st, c, b))
        self.start = tuple(a[0] for a in canon)
        self.stride = tuple(a[1] for a in canon)
        self.count = tuple(a[2] for a in canon)
        self.block = tuple(a[3] for a in canon)
        self.rank = rank
        self.out_shape = tuple(c * b for c, b in zip(self.count, self.block))

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_block(cls, offsets, dims) -> "Hyperslab":
        """The contiguous block at ``offsets`` with extent ``dims``."""
        return cls(tuple(offsets), tuple(dims))

    @classmethod
    def all(cls, global_dims) -> "Hyperslab":
        """The whole variable."""
        gd = tuple(global_dims)
        return cls((0,) * len(gd), gd)

    def __repr__(self) -> str:
        return (f"Hyperslab(start={self.start}, count={self.count}, "
                f"stride={self.stride}, block={self.block})")

    def __eq__(self, other) -> bool:
        return (isinstance(other, Hyperslab)
                and self.start == other.start and self.stride == other.stride
                and self.count == other.count and self.block == other.block)

    def __hash__(self) -> int:
        return hash((self.start, self.stride, self.count, self.block))

    # -- algebra -----------------------------------------------------------

    def normalized(self, global_dims) -> "Hyperslab":
        gd = tuple(int(d) for d in global_dims)
        if len(gd) != self.rank:
            raise DimensionMismatchError(
                f"selection rank {self.rank} != variable rank {len(gd)}"
            )
        for s, st, c, b, g in zip(self.start, self.stride, self.count,
                                  self.block, gd):
            if c and s + (c - 1) * st + b > g:
                raise DimensionMismatchError(
                    f"hyperslab (start={s}, stride={st}, count={c}, "
                    f"block={b}) outside global extent {g}"
                )
            if c == 0 and s > g:
                raise DimensionMismatchError(
                    f"hyperslab start {s} outside global extent {g}"
                )
        return self

    def bbox(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        dims = tuple(
            ((c - 1) * st + b) if c else 0
            for st, c, b in zip(self.stride, self.count, self.block)
        )
        return self.start, dims

    def _axis_sel(self, axis: int, lo: int, hi: int) -> tuple[np.ndarray, np.ndarray]:
        """Selected global indices on ``axis`` restricted to ``[lo, hi)``,
        with the matching result-axis indices."""
        s, st, c, b = (self.start[axis], self.stride[axis],
                       self.count[axis], self.block[axis])
        if c == 0 or hi <= lo:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        # block index range that can intersect [lo, hi)
        i_lo = max(0, (lo - s - (b - 1) + st - 1) // st) if lo > s else 0
        i_hi = min(c, (hi - 1 - s) // st + 1) if hi > s else 0
        if i_hi <= i_lo:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        i = np.arange(i_lo, i_hi, dtype=np.int64)
        g = (s + i[:, None] * st + np.arange(b, dtype=np.int64)[None, :]).ravel()
        o = (i[:, None] * b + np.arange(b, dtype=np.int64)[None, :]).ravel()
        m = (g >= lo) & (g < hi)
        return g[m], o[m]

    def _axis_count(self, axis: int, lo: int, hi: int) -> int:
        g, _ = self._axis_sel(axis, lo, hi)
        return len(g)

    def overlap_count(self, offsets, dims) -> int:
        if self.rank == 0:
            return 1
        total = 1
        for ax, (o, d) in enumerate(zip(offsets, dims)):
            total *= self._axis_count(ax, o, o + d)
            if total == 0:
                return 0
        return total

    def runs(self, offsets, dims) -> Iterator[Run]:
        offsets = tuple(int(o) for o in offsets)
        dims = tuple(int(d) for d in dims)
        if self.rank == 0:
            yield Run(0, 0, 1)
            return
        axes = [self._axis_sel(ax, o, o + d)
                for ax, (o, d) in enumerate(zip(offsets, dims))]
        if any(len(g) == 0 for g, _ in axes):
            return
        src_strides = _row_major_strides(dims)
        dst_strides = _row_major_strides(self.out_shape)
        # split the last axis into segments contiguous on both sides
        gl, ol = axes[-1]
        brk = np.flatnonzero((np.diff(gl) != 1) | (np.diff(ol) != 1)) + 1
        seg_bounds = np.concatenate(([0], brk, [len(gl)]))
        segments = [
            (int(gl[a]) - offsets[-1], int(ol[a]), int(b - a))
            for a, b in zip(seg_bounds[:-1], seg_bounds[1:])
        ]
        outer = [len(g) for g, _ in axes[:-1]]
        for idx in np.ndindex(*outer):
            src_base = sum(
                (int(axes[ax][0][i]) - offsets[ax]) * src_strides[ax]
                for ax, i in enumerate(idx)
            )
            dst_base = sum(
                int(axes[ax][1][i]) * dst_strides[ax]
                for ax, i in enumerate(idx)
            )
            for g0, o0, n in segments:
                yield Run(src_base + g0 * src_strides[-1],
                          dst_base + o0 * dst_strides[-1], n)

    def _slice_pairs(self, offsets, dims) -> Iterator[tuple[tuple, tuple]]:
        """(src_slices, dst_slices) index-tuple pairs: src indexes a
        ``dims``-shaped region array, dst a :attr:`out_shape`-shaped result.
        One pair per combination of per-axis block phases (``prod(block)``
        pairs at most), so numpy handles the strided transfers."""
        if self.rank == 0:
            yield (), ()
            return
        per_axis: list[list[tuple[slice, slice]]] = []
        for ax, (o, d) in enumerate(zip(offsets, dims)):
            s, st, c, b = (self.start[ax], self.stride[ax],
                           self.count[ax], self.block[ax])
            lo, hi = int(o), int(o) + int(d)
            pairs = []
            for beta in range(b):
                s_b = s + beta
                # block-index range whose phase-beta element is in [lo, hi)
                i_lo = max(0, -(-(lo - s_b) // st))
                i_hi = min(c, (hi - 1 - s_b) // st + 1) if hi > s_b else 0
                if i_hi <= i_lo:
                    continue
                src = slice(s_b + i_lo * st - lo,
                            s_b + (i_hi - 1) * st - lo + 1, st)
                dst = slice(i_lo * b + beta, (i_hi - 1) * b + beta + 1, b)
                pairs.append((src, dst))
            if not pairs:
                return
            per_axis.append(pairs)
        for combo in np.ndindex(*[len(p) for p in per_axis]):
            src_sl = tuple(per_axis[ax][i][0] for ax, i in enumerate(combo))
            dst_sl = tuple(per_axis[ax][i][1] for ax, i in enumerate(combo))
            yield src_sl, dst_sl

    def scatter_into(self, out: np.ndarray, region: np.ndarray, offsets) -> int:
        copied = 0
        for src_sl, dst_sl in self._slice_pairs(offsets, region.shape):
            piece = region[src_sl]
            out[dst_sl] = piece
            copied += piece.size
        return copied

    def gather_from(self, data: np.ndarray, region: np.ndarray, offsets) -> int:
        copied = 0
        for src_sl, dst_sl in self._slice_pairs(offsets, region.shape):
            piece = data[dst_sl]
            region[src_sl] = piece
            copied += piece.size
        return copied

    # -- composition -------------------------------------------------------

    def _axis_cells(self, axis: int) -> list[tuple[int, int, int]]:
        """Maximal contiguous index cells on ``axis`` as
        ``(global_start, extent, result_start)`` triples."""
        s, st, c, b = (self.start[axis], self.stride[axis],
                       self.count[axis], self.block[axis])
        if st == b:  # contiguous axis (canonical form has b == st == 1)
            return [(s, c * b, 0)] if c else []
        return [(s + i * st, b, i * b) for i in range(c)]

    def blocks(self) -> Iterator[tuple[tuple[int, ...], tuple[int, ...]]]:
        """The selection's maximal contiguous block cells as
        ``(offsets, dims)`` pairs, in result order — how a strided *store*
        decomposes into plain block puts."""
        if self.rank == 0:
            yield (), ()
            return
        cells = [self._axis_cells(ax) for ax in range(self.rank)]
        for combo in np.ndindex(*[len(c) for c in cells]):
            picked = [cells[ax][i] for ax, i in enumerate(combo)]
            yield (tuple(p[0] for p in picked), tuple(p[1] for p in picked))

    def block_result_slices(self) -> Iterator[tuple]:
        """For each :meth:`blocks` cell, the index tuple selecting its
        elements from the dense result buffer (same iteration order)."""
        if self.rank == 0:
            yield ()
            return
        cells = [self._axis_cells(ax) for ax in range(self.rank)]
        for combo in np.ndindex(*[len(c) for c in cells]):
            yield tuple(
                slice(cells[ax][i][2], cells[ax][i][2] + cells[ax][i][1])
                for ax, i in enumerate(combo)
            )

    def compose(self, inner: "Selection") -> "Selection":
        """Apply ``inner`` — a selection over *this* hyperslab's result
        space — yielding a selection in global coordinates.

        Supported where the combination stays a regular hyperslab / point
        set: any inner selection against a unit-block outer, or a
        unit-stride outer; other shapes raise
        :class:`~repro.errors.PmemcpyError`.
        """
        if isinstance(inner, PointSelection):
            if inner.rank != self.rank:
                raise DimensionMismatchError(
                    f"compose: inner rank {inner.rank} != outer {self.rank}"
                )
            pts = []
            for p in inner.points:
                gp = []
                for ax, v in enumerate(p):
                    if not 0 <= v < self.out_shape[ax]:
                        raise DimensionMismatchError(
                            f"compose: point {tuple(p)} outside selection "
                            f"result shape {self.out_shape}"
                        )
                    b = self.block[ax]
                    gp.append(self.start[ax] + (v // b) * self.stride[ax]
                              + v % b)
                pts.append(tuple(gp))
            return PointSelection(pts)
        if not isinstance(inner, Hyperslab):
            raise PmemcpyError(f"cannot compose with {type(inner).__name__}")
        if inner.rank != self.rank:
            raise DimensionMismatchError(
                f"compose: inner rank {inner.rank} != outer {self.rank}"
            )
        inner.normalized(self.out_shape)
        start, stride, count, block = [], [], [], []
        for ax in range(self.rank):
            os_, ot, ob = self.start[ax], self.stride[ax], self.block[ax]
            is_, it, ic, ib = (inner.start[ax], inner.stride[ax],
                               inner.count[ax], inner.block[ax])
            if ob == 1:
                start.append(os_ + is_ * ot)
                stride.append(it * ot)
                count.append(ic)
                if ib == 1:
                    block.append(1)
                elif ot == 1:
                    block.append(ib)
                else:
                    raise PmemcpyError(
                        "compose: inner blocks span outer stride gaps "
                        f"(axis {ax}); not representable as a hyperslab"
                    )
            else:
                raise PmemcpyError(
                    f"compose: outer block {ob} > 1 on axis {ax}; "
                    "decompose via blocks() instead"
                )
        return Hyperslab(tuple(start), tuple(count), tuple(stride),
                         tuple(block))


# ---------------------------------------------------------------------------
# PointSelection
# ---------------------------------------------------------------------------

class PointSelection(Selection):
    """An explicit list of global points, gathered in list order into a
    1-d result of shape ``(npoints,)`` (0-d variables take rank-0 points,
    i.e. empty tuples)."""

    __slots__ = ("points", "out_shape", "rank")

    def __init__(self, points):
        pts = np.asarray(points, dtype=np.int64)
        if pts.ndim == 1 and pts.size == 0:
            pts = pts.reshape(0, 0)
        if pts.ndim != 2:
            raise DimensionMismatchError(
                f"points must be an (npoints, rank) array, got shape "
                f"{pts.shape}"
            )
        self.points = pts
        self.rank = int(pts.shape[1])
        self.out_shape = (int(pts.shape[0]),)

    def __repr__(self) -> str:
        return f"PointSelection({len(self.points)} points, rank={self.rank})"

    def normalized(self, global_dims) -> "PointSelection":
        gd = tuple(int(d) for d in global_dims)
        if len(self.points) and len(gd) != self.rank:
            raise DimensionMismatchError(
                f"selection rank {self.rank} != variable rank {len(gd)}"
            )
        if len(self.points):
            if (self.points < 0).any() or (
                self.points >= np.asarray(gd, dtype=np.int64)
            ).any():
                raise DimensionMismatchError(
                    f"point selection outside global dims {gd}"
                )
        return self

    def bbox(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        if not len(self.points):
            return (0,) * self.rank, (0,) * self.rank
        lo = self.points.min(axis=0)
        hi = self.points.max(axis=0) + 1
        return tuple(int(v) for v in lo), tuple(int(v) for v in hi - lo)

    def _inside(self, offsets, dims) -> np.ndarray:
        """Boolean mask of points inside the box."""
        if not len(self.points):
            return np.zeros(0, dtype=bool)
        if self.rank == 0:
            return np.ones(len(self.points), dtype=bool)
        lo = np.asarray(offsets, dtype=np.int64)
        hi = lo + np.asarray(dims, dtype=np.int64)
        return ((self.points >= lo) & (self.points < hi)).all(axis=1)

    def overlap_count(self, offsets, dims) -> int:
        return int(self._inside(offsets, dims).sum())

    def runs(self, offsets, dims) -> Iterator[Run]:
        mask = self._inside(offsets, dims)
        if not mask.any():
            return
        offsets = np.asarray(offsets, dtype=np.int64)
        strides = np.asarray(_row_major_strides(dims), dtype=np.int64)
        idx = np.flatnonzero(mask)
        rel = self.points[idx] - offsets
        src = rel @ strides if self.rank else np.zeros(len(idx), np.int64)
        # coalesce list-adjacent points that are also row-adjacent
        run_src = int(src[0])
        run_dst = int(idx[0])
        n = 1
        for k in range(1, len(idx)):
            if int(idx[k]) == run_dst + n and int(src[k]) == run_src + n:
                n += 1
                continue
            yield Run(run_src, run_dst, n)
            run_src, run_dst, n = int(src[k]), int(idx[k]), 1
        yield Run(run_src, run_dst, n)

    def _indexers(self, offsets, dims):
        mask = self._inside(offsets, dims)
        idx = np.flatnonzero(mask)
        if self.rank == 0:
            return tuple(), idx
        rel = self.points[idx] - np.asarray(offsets, dtype=np.int64)
        return tuple(rel.T), idx

    def scatter_into(self, out: np.ndarray, region: np.ndarray, offsets) -> int:
        src_idx, dst_idx = self._indexers(offsets, region.shape)
        if not len(dst_idx):
            return 0
        if self.rank == 0:
            out[dst_idx] = region[()]
        else:
            out[dst_idx] = region[src_idx]
        return len(dst_idx)

    def gather_from(self, data: np.ndarray, region: np.ndarray, offsets) -> int:
        src_idx, dst_idx = self._indexers(offsets, region.shape)
        if not len(dst_idx):
            return 0
        region[src_idx] = data[dst_idx]
        return len(dst_idx)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _row_major_strides(dims) -> tuple[int, ...]:
    """Element (not byte) strides of a C-ordered array of shape ``dims``."""
    strides = []
    acc = 1
    for d in reversed(tuple(dims)):
        strides.append(acc)
        acc *= max(int(d), 1)
    return tuple(reversed(strides))


def as_selection(offsets, dims, selection, global_dims) -> Selection:
    """Normalize the ``(offsets, dims)`` / ``selection`` calling convention
    shared by :meth:`PMEM.load` and the driver layer."""
    if selection is not None:
        if offsets is not None or dims is not None:
            raise DimensionMismatchError(
                "pass either offsets/dims or a selection, not both"
            )
        return selection.normalized(global_dims)
    if offsets is None and dims is None:
        return Hyperslab.all(global_dims)
    if offsets is None or dims is None:
        raise DimensionMismatchError(
            "offsets and dims must be given together"
        )
    return Hyperslab.from_block(offsets, dims).normalized(global_dims)
