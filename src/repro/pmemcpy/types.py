"""Small public value types for the pMEMCPY API."""

from __future__ import annotations

import math

import numpy as np

from ..errors import DimensionMismatchError


class Dimensions:
    """``pmemcpy::Dimensions`` (Fig. 2, line 10): an n-d shape.

    Accepts ``Dimensions(100, 200)``, ``Dimensions((100, 200))``, or another
    Dimensions.
    """

    def __init__(self, *dims):
        if len(dims) == 1 and isinstance(dims[0], (tuple, list, Dimensions)):
            dims = tuple(dims[0])
        if not dims:
            raise DimensionMismatchError("Dimensions needs at least one dim")
        bad = [d for d in dims if int(d) != d or d < 0]
        if bad:
            raise DimensionMismatchError(f"invalid dimensions {dims}")
        self._dims = tuple(int(d) for d in dims)

    @property
    def ndims(self) -> int:
        return len(self._dims)

    @property
    def nelems(self) -> int:
        return math.prod(self._dims)

    def nbytes(self, dtype) -> int:
        return self.nelems * np.dtype(dtype).itemsize

    def __iter__(self):
        return iter(self._dims)

    def __len__(self) -> int:
        return len(self._dims)

    def __getitem__(self, i):
        return self._dims[i]

    def __eq__(self, other) -> bool:
        if isinstance(other, (Dimensions, tuple, list)):
            return self._dims == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._dims)

    def __repr__(self) -> str:
        return f"Dimensions{self._dims}"


def as_dims(value) -> tuple[int, ...]:
    """Normalize a shape-like (int, tuple, Dimensions) to a tuple."""
    if isinstance(value, Dimensions):
        return tuple(value)
    if isinstance(value, (int, np.integer)):
        return (int(value),)
    return tuple(int(d) for d in value)
