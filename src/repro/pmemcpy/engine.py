"""The Layout engine contract: one interface for every storage backend.

The :class:`PMEM` API is written against this abstract interface only — it
never inspects which concrete layout it is driving.  A layout answers four
questions:

1. *Metadata*: where does a variable's :class:`VariableMeta` record live,
   and what locks serialize access to it?  Concurrency is *per-variable*:
   ``meta_read(ctx, var_id)`` / ``meta_write(ctx, var_id)`` guard one
   variable's record (shared vs. exclusive), so ranks touching independent
   variables never contend; ``meta_namespace(ctx)`` is the whole-namespace
   exclusive guard that listing and teardown take.  Record access itself
   goes through ``get_meta`` / ``put_meta`` / ``drop_meta`` /
   ``list_variables``, which the caller must invoke under the matching
   guard — the lock-discipline checker (:mod:`repro.sim.lockcheck`)
   verifies exactly that.
2. *Extents*: where does one chunk's serialized payload live?
   ``alloc_extent`` reserves space and returns an :class:`Extent` whose
   ``token`` is persisted in the chunk record; ``extent_sink`` /
   ``extent_source`` stream bytes directly in and out of PMEM (the paper's
   zero-staging path); ``free_extent`` releases a chunk by its record.
   Sources are **segment-granular**: beyond the sequential ``read`` cursor
   they serve ``read_at(offset, nbytes)`` ranged reads, so a selection
   load can fetch only the intersecting row segments of a record straight
   off the mapped device — bytes outside the selection are never moved or
   charged.
3. *Lifecycle*: ``setup`` / ``teardown`` (collective map/unmap).
4. *Introspection*: ``occupancy`` reports backend capacity usage for
   ``PMEM.stats()``.

Adding a backend (sharded pools, tiered stores, remote targets) means
implementing this class — the API, telemetry, and test matrix come for
free.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable

from ..serial.base import Sink, Source
from ..telemetry import span
from .dataset import Chunk, VariableMeta


@dataclass
class Extent:
    """One chunk's reserved storage.

    ``token`` is the layout-defined durable handle recorded in
    ``Chunk.blob_off`` (a pool offset for the hashtable layout, a chunk-file
    index for the hierarchical layout).  ``region`` is the layout's access
    object for the reservation (a pool or a DAX mapping) — sinks and raw
    writes go through it.  ``close`` releases any per-extent volatile
    resource (e.g. unmapping a chunk file); it must be called exactly once
    after the payload is persisted.
    """

    token: int
    size: int
    region: Any
    _closer: Callable | None = field(default=None, repr=False)

    def close(self, ctx) -> None:
        if self._closer is not None:
            closer, self._closer = self._closer, None
            closer(ctx)


class MetaGuard:
    """Uniform wrapper a layout's ``meta_*`` methods hand back.

    Wraps the backend lock guard, surfacing ``contended`` after entry and
    the ``stripe`` lane the variable hashed onto (None when the layout has
    no striping or the guard covers the whole namespace).
    """

    def __init__(self, inner, *, stripe: int | None = None):
        self._inner = inner
        self.stripe = stripe
        self.contended = False

    def __enter__(self) -> "MetaGuard":
        entered = self._inner.__enter__()
        self.contended = bool(getattr(entered, "contended", False))
        return self

    def __exit__(self, *exc):
        return self._inner.__exit__(*exc)


class Layout(ABC):
    """Abstract storage engine behind the pMEMCPY store/load path."""

    name: str = "abstract"

    # ------------------------------------------------------------------ lifecycle

    @abstractmethod
    def setup(self, ctx, comm, path: str, *, pool_size: int) -> None:
        """Collective: map/create the store at ``path`` on every rank."""

    @abstractmethod
    def teardown(self, ctx, comm) -> None:
        """Collective unmap."""

    # ------------------------------------------------------------------ metadata

    @abstractmethod
    def meta_read(self, ctx, var_id: str):
        """Context manager guarding *reads* of ``var_id``'s metadata.

        ``__enter__`` returns a guard exposing ``contended`` (bool: did the
        acquisition have to wait?) and ``stripe`` (int lane index, or None
        for layouts without striping).  Layouts configured for
        reader-writer metadata take this in shared mode; otherwise it is
        exclusive.
        """

    @abstractmethod
    def meta_write(self, ctx, var_id: str):
        """Context manager guarding read-modify-write of ``var_id``'s
        metadata — always exclusive.  Every ``put_meta``/``drop_meta`` for
        ``var_id`` must happen inside it (checker-enforced)."""

    @abstractmethod
    def meta_namespace(self, ctx):
        """Context manager holding the *whole namespace* exclusively —
        what ``list_variables`` sweeps and teardown must run under.  For
        striped layouts this acquires every stripe in ascending order (the
        canonical lock order)."""

    @abstractmethod
    def get_meta(self, ctx, var_id: str) -> VariableMeta | None: ...

    @abstractmethod
    def put_meta(self, ctx, meta: VariableMeta) -> None: ...

    @abstractmethod
    def drop_meta(self, ctx, var_id: str) -> None:
        """Remove the variable's metadata record (payloads are freed
        separately via :meth:`free_extent`)."""

    @abstractmethod
    def list_variables(self, ctx) -> list[str]: ...

    def delete_variable(self, ctx, meta: VariableMeta) -> None:
        """Free every chunk extent, then drop the metadata record."""
        for chunk in meta.chunks:
            with span(ctx, "extent.free", bytes=chunk.blob_len):
                self.free_extent(ctx, meta.name, chunk)
        self.drop_meta(ctx, meta.name)

    # ------------------------------------------------------------------ extents

    @abstractmethod
    def alloc_extent(self, ctx, name: str, index: int, size: int) -> Extent:
        """Reserve ``size`` bytes for chunk ``index`` of variable ``name``."""

    @abstractmethod
    def extent_sink(self, ctx, extent: Extent) -> Sink:
        """A streaming pack destination writing directly into ``extent``."""

    @abstractmethod
    def extent_source(self, ctx, name: str, chunk: Chunk) -> Source:
        """A streaming unpack origin over a stored chunk's payload.

        The returned source must honour the segment-granular contract:
        ``read_at(offset, nbytes)`` serves an absolute-offset ranged read
        within the record without staging the rest of it (see module
        docstring, point 2)."""

    @abstractmethod
    def free_extent(self, ctx, name: str, chunk: Chunk) -> None:
        """Release the storage behind ``chunk`` (keyed by its record, never
        by list position).  Must tolerate an extent whose backing store was
        never materialized, so a partial failure cannot wedge ``delete``."""

    # ------------------------------------------------------------------ introspection

    @abstractmethod
    def occupancy(self, ctx) -> dict:
        """Backend capacity usage, keyed by backend kind (``{"heap": ...}``
        for pool layouts, ``{"fs": ...}`` for file-per-variable layouts) —
        merged verbatim into ``PMEM.stats()``."""
