"""pMEMCPY — the paper's contribution: a simple, lightweight, portable I/O
library for storing data in persistent memory.

The Python rendering of the Fig. 2 C++ API::

    pmem = PMEM()                      # pmemcpy::PMEM pmem;
    pmem.mmap(path, comm)              # pmem.mmap(filename, comm);
    pmem.alloc("A", Dimensions(n), dtype=np.float64)
    pmem.store("A", local, offsets=(off,))   # subarray store
    pmem.store("x", value)                   # whole-object store
    out = pmem.load("A", offsets=(off,), dims=(count,))
    dims = pmem.load_dims("A")
    pmem.munmap()

Partial I/O goes through first-class selections (see
:mod:`repro.pmemcpy.selection`)::

    plane = Hyperslab(start=(0, 0, 0), count=(5, 1, 1),
                      stride=(8, 1, 1), block=(1, ny, nz))
    out = pmem.load("A", selection=plane)          # strided read
    pts = pmem.load("A", selection=PointSelection([(1, 2, 3), (4, 5, 6)]))

Two layouts (§3 "Data Layout"): ``"hashtable"`` — a flat namespace in a
PMDK pool's persistent hashtable; ``"hierarchical"`` — a directory tree on
the DAX filesystem, one file per variable, directories created for every
``/`` in the id.  Serializer and MAP_SYNC are configurable per §3.
"""

from .api import PMEM
from .types import Dimensions
from .dataset import Chunk, VariableMeta
from .selection import Hyperslab, PointSelection, Selection

__all__ = [
    "PMEM", "Dimensions", "Chunk", "VariableMeta",
    "Hyperslab", "PointSelection", "Selection",
]
