"""The pMEMCPY public API (paper Fig. 2).

Every store/load flows through the abstract :class:`~.engine.Layout`
engine: the API allocates an extent, streams the serialized payload
through the layout's sink/source, and records chunk bookkeeping — it never
inspects which concrete layout it is driving.  Filtered and unfiltered
stores share one code path that differs only by an optional DRAM staging
stage (the deliberate copy a compressor needs).

Telemetry: each operation updates the rank's counter registry
(``repro.telemetry``) — op counts, logical vs stored bytes, staging passes,
meta-lock hold time and contention — and its typed metric families
(stripe-occupancy and op-latency histograms), surfaced via
:meth:`PMEM.stats` and the harness's ``--profile`` flag.  Every store/load
additionally opens a structured span tree (``pmemcpy.store`` →
``store.reserve``/``meta-lock``/``store.alloc``/``store.serialize``/
``memcpy``/``store.persist``/``store.publish``) timed in modeled ns, so a
single operation can be replayed in Perfetto; see DESIGN.md §9.

Metadata concurrency (the striped-locks redesign): every metadata access
runs under the owning layout guard — ``meta_read``/``meta_write`` for one
variable, ``meta_namespace`` for sweeps — so ranks working on independent
variables never contend.  Stores are **three-phase** so the (large) payload
write happens outside any metadata lock:

1. *reserve* — under the write guard: validate, bump the variable's
   persistent ``next_index``, republish;
2. *write* — no metadata lock held: allocate the extent and stream the
   serialized payload into PMEM;
3. *publish* — under the write guard again: re-fetch the record, append
   the chunk, republish (if the variable vanished meanwhile, the extent is
   freed and the store raises).

Only the µs-scale metadata edits ever serialize, never the data path.
"""

from __future__ import annotations

import copy
from contextlib import contextmanager

import numpy as np

from ..errors import (
    DimensionMismatchError,
    KeyNotFoundError,
    NotMappedError,
    PmemcpyError,
)
from ..serial import DramSink, DramSource, get_serializer
from ..serial.base import array_from_bytes
from ..serial.filters import FilterPipeline
from ..telemetry import LANE_BOUNDS, counters_for, metrics_for, record, span
from ..telemetry.export import registry_percentiles
from .cache import DEFAULT_CHUNK_CACHE_BYTES, ChunkCache
from .dataset import Chunk, VariableMeta, split_at_chunk_grid
from .engine import Layout
from .layout_fs import HierarchicalLayout
from .layout_hash import HashtableLayout
from .selection import Hyperslab, Selection, as_selection
from .types import as_dims

_LAYOUTS: dict[str, type[Layout]] = {
    "hashtable": HashtableLayout,
    "hierarchical": HierarchicalLayout,
}


def _pairwise_disjoint(chunks) -> bool:
    """True when no two chunk boxes overlap (each output element is
    written at most once)."""
    for i, a in enumerate(chunks):
        for b in chunks[i + 1:]:
            if a.intersects(b.offsets, b.dims):
                return False
    return True


class PMEM:
    """A per-rank handle to a pMEMCPY store.

    Mirrors the C++ object of Fig. 2: construct, ``mmap(path, comm)``,
    ``alloc``/``store``/``load``/``load_dims``, ``munmap``.

    Configuration (§3): ``serializer`` ∈ {bp4, cproto, cereal, raw/none},
    ``layout`` ∈ {hashtable, hierarchical}, and ``map_sync`` toggling the
    MAP_SYNC mapping flag (PMCPY-B in the paper's figures).

    Metadata-concurrency knobs: ``meta_stripes`` is the number of lock
    lanes the namespace is striped over (1 = the old global mutex;
    default: 64 when ``map_sync`` — PMCPY-B — else 1), ``meta_rw`` makes
    metadata reads take their lane *shared* (default: on whenever striping
    is on).
    """

    def __init__(
        self,
        *,
        serializer: str = "bp4",
        layout: str = "hashtable",
        map_sync: bool = False,
        pool_size: int | None = None,
        nbuckets: int = 64,
        filters: tuple | list = (),
        meta_stripes: int | None = None,
        meta_rw: bool | None = None,
        chunk_cache_bytes: int = DEFAULT_CHUNK_CACHE_BYTES,
    ):
        self.serializer = get_serializer(serializer)
        if layout not in _LAYOUTS:
            raise PmemcpyError(
                f"unknown layout {layout!r}; choose from {sorted(_LAYOUTS)}"
            )
        if meta_stripes is None:
            meta_stripes = 64 if map_sync else 1
        if meta_stripes < 1:
            raise PmemcpyError("meta_stripes must be >= 1")
        if meta_rw is None:
            meta_rw = meta_stripes > 1
        self.meta_stripes = meta_stripes
        self.meta_rw = meta_rw
        if layout == "hashtable":
            self.layout: Layout = HashtableLayout(
                map_sync=map_sync, nbuckets=nbuckets,
                meta_stripes=meta_stripes, meta_rw=meta_rw,
            )
        else:
            self.layout = HierarchicalLayout(
                map_sync=map_sync,
                meta_stripes=meta_stripes, meta_rw=meta_rw,
            )
        self.map_sync = map_sync
        self.pool_size = pool_size
        # optional transform pipeline (§2.1-style operators).  Compression
        # trades pMEMCPY's streaming direct-to-PMEM pack for one DRAM
        # staging pass plus fewer PMEM bytes.
        self.pipeline = FilterPipeline(filters) if filters else None
        # decoded-chunk LRU: repeated partial reads of one *filtered* chunk
        # pay the fetch + decode once (see repro.pmemcpy.cache)
        self._chunk_cache = ChunkCache(chunk_cache_bytes)
        self._ctx = None
        self._comm = None
        self.path: str | None = None

    @property
    def _filters_token(self) -> str:
        return ",".join(self.pipeline.names) if self.pipeline else ""

    # ------------------------------------------------------------------ mapping

    def mmap(self, path: str, comm) -> "PMEM":
        """Collective: map the store at ``path`` on every rank of ``comm``."""
        ctx = comm.ctx
        if ctx.env is None:
            raise PmemcpyError(
                "PMEM needs a cluster environment: run under "
                "Cluster.run(...) or run_spmd(..., env=cluster)"
            )
        pool_size = self.pool_size
        if pool_size is None:
            pool_size = ctx.env.device.capacity // 2
        self.layout.setup(ctx, comm, path, pool_size=pool_size)
        self._ctx = ctx
        self._comm = comm
        self.path = path
        return self

    def munmap(self) -> None:
        self._require()
        self._chunk_cache.clear()
        self.layout.teardown(self._ctx, self._comm)
        self._ctx = None
        self._comm = None
        self.path = None

    def _require(self):
        if self._ctx is None:
            raise NotMappedError("PMEM is not mapped — call mmap(path, comm)")

    @property
    def ctx(self):
        self._require()
        return self._ctx

    @contextmanager
    def _metered(self, ctx, guard):
        """Enter a layout meta guard, metering hold time, contention, and
        stripe occupancy.

        The ``meta-lock`` span brackets acquire-wait *and* hold, so lock
        time shows up as a named child of whichever store/load phase took
        the guard.  Stripe occupancy feeds the fixed-lane
        ``meta.stripe.acquires`` histogram (O(64) to aggregate across any
        number of runs; :meth:`MetricRegistry.legacy_counters` expands it
        back to the per-stripe keys for ``--profile``)."""
        with span(ctx, "meta-lock"):
            with guard as g:
                t0 = ctx.lb_ns
                record(ctx, "meta_lock_acquires")
                record(ctx, "meta.lock.acquires")
                if g.contended:
                    record(ctx, "meta.lock.contended")
                if g.stripe is not None:
                    metrics_for(ctx).histogram(
                        "meta.stripe.acquires", LANE_BOUNDS
                    ).observe(float(g.stripe))
                try:
                    yield g
                finally:
                    held = ctx.lb_ns - t0
                    record(ctx, "meta_lock_ns", held)
                    metrics_for(ctx).histogram("meta.lock.ns").observe(held)

    def _meta_read(self, ctx, var_id: str):
        return self._metered(ctx, self.layout.meta_read(ctx, var_id))

    def _meta_write(self, ctx, var_id: str):
        return self._metered(ctx, self.layout.meta_write(ctx, var_id))

    def _meta_namespace(self, ctx):
        return self._metered(ctx, self.layout.meta_namespace(ctx))

    # ------------------------------------------------------------------ alloc

    def alloc(self, var_id: str, dims, dtype=np.float64, *,
              chunk_shape=None) -> None:
        """Declare the global dimensions of ``var_id`` (Fig. 2 lines 7-10).

        Idempotent and safe to call from every rank (first caller creates;
        later callers validate).  ``chunk_shape`` declares an aligned-chunk
        layout: every store is split at multiples of that shape, so chunks
        tile a fixed grid — the unit of per-chunk filtering and of the
        decoded-chunk cache (metadata format v2)."""
        self._require()
        ctx = self._ctx
        gdims = as_dims(dims)
        dt = np.dtype(dtype)
        cshape = None
        if chunk_shape is not None:
            cshape = tuple(int(c) for c in chunk_shape)
            if len(cshape) != len(gdims) or any(c < 1 for c in cshape):
                raise DimensionMismatchError(
                    f"alloc({var_id!r}): chunk_shape {cshape} must have one "
                    f"positive extent per axis of {gdims}"
                )
        record(ctx, "pmemcpy_alloc_ops")
        with span(ctx, "pmemcpy.alloc", var=var_id):
            with self._meta_write(ctx, var_id):
                meta = self.layout.get_meta(ctx, var_id)
                if meta is None:
                    meta = VariableMeta(
                        name=var_id, dtype=dt, global_dims=gdims,
                        serializer=self.serializer.name,
                        filters=self._filters_token,
                        chunk_shape=cshape,
                    )
                    self.layout.put_meta(ctx, meta)
                else:
                    if tuple(meta.global_dims) != gdims or meta.dtype != dt:
                        raise DimensionMismatchError(
                            f"alloc({var_id!r}): existing dims "
                            f"{tuple(meta.global_dims)}/{meta.dtype} != "
                            f"requested {gdims}/{dt}"
                        )
                    if cshape is not None and meta.chunk_shape != cshape:
                        raise DimensionMismatchError(
                            f"alloc({var_id!r}): existing chunk_shape "
                            f"{meta.chunk_shape} != requested {cshape}"
                        )

    # ------------------------------------------------------------------ store

    def store(self, var_id: str, data, offsets=None, *,
              selection: Selection | None = None) -> None:
        """Store a whole object (``store<T>(id, data)``), a subarray of an
        alloc'd variable (``store<T>(id, data, ndims, offsets, dimspp)``),
        or a strided :class:`~.selection.Hyperslab` of one
        (``selection=``)."""
        self._require()
        ctx = self._ctx
        array = np.asarray(data)
        record(ctx, "pmemcpy_store_ops")
        record(ctx, "pmemcpy_logical_store_bytes", int(array.nbytes))
        t0 = ctx.lb_ns
        try:
            with span(ctx, "pmemcpy.store",
                      var=var_id, bytes=int(array.nbytes)):
                if selection is not None:
                    if offsets is not None:
                        raise DimensionMismatchError(
                            "store: pass either offsets or a selection, "
                            "not both"
                        )
                    self._store_selection(ctx, var_id, array, selection)
                elif offsets is None:
                    self._store_whole(ctx, var_id, array)
                else:
                    self._store_sub(ctx, var_id, array, as_dims(offsets))
        finally:
            # always-on op latency (survives REPRO_TRACE=off)
            metrics_for(ctx).histogram(
                "pmemcpy.store.ns").observe(ctx.lb_ns - t0)

    def _store_selection(self, ctx, var_id: str, array, sel: Selection) -> None:
        """Strided stores decompose into the selection's maximal contiguous
        block cells, each stored as an ordinary subarray chunk — strided
        *reads* are first-class, strided writes are sugar over block puts."""
        if not isinstance(sel, Hyperslab):
            raise PmemcpyError(
                f"store(selection=...) needs a hyperslab; "
                f"{type(sel).__name__} stores have no block decomposition"
            )
        with self._meta_read(ctx, var_id):
            meta = self.layout.get_meta(ctx, var_id)
        if meta is None:
            raise KeyNotFoundError(
                f"store({var_id!r}, selection=...): variable not alloc'd"
            )
        sel = sel.normalized(tuple(meta.global_dims))
        if tuple(array.shape) != sel.out_shape:
            raise DimensionMismatchError(
                f"store({var_id!r}): data shape {tuple(array.shape)} vs "
                f"selection shape {sel.out_shape}"
            )
        for (cell_off, _cell_dims), result_sl in zip(
            sel.blocks(), sel.block_result_slices()
        ):
            self._store_sub(
                ctx, var_id, np.ascontiguousarray(array[result_sl]), cell_off
            )

    def _grid_pieces(self, meta, offsets, dims):
        """The aligned pieces one store of ``(offsets, dims)`` splits into
        (a single piece when the variable has no chunk grid)."""
        if meta.chunk_shape is None:
            return [(tuple(offsets), tuple(dims))]
        return split_at_chunk_grid(meta.chunk_shape, offsets, dims)

    def _store_whole(self, ctx, var_id: str, array: np.ndarray) -> None:
        gdims = tuple(array.shape)
        offsets = tuple(0 for _ in gdims)
        # phase 1 (reserve): validate, retire old chunks, claim chunk slots
        with span(ctx, "store.reserve"), self._meta_write(ctx, var_id):
            meta = self.layout.get_meta(ctx, var_id)
            if meta is None:
                meta = VariableMeta(
                    name=var_id, dtype=array.dtype, global_dims=gdims,
                    serializer=self.serializer.name,
                    filters=self._filters_token,
                )
            else:
                if not meta.chunks and (
                    tuple(meta.global_dims) != gdims or meta.dtype != array.dtype
                ):
                    # alloc'd but never stored: the declared shape is a
                    # cross-rank contract — replacing it out from under
                    # concurrent sub-stores would corrupt the variable
                    raise DimensionMismatchError(
                        f"store({var_id!r}): whole-store {gdims}/{array.dtype} "
                        f"conflicts with alloc'd {tuple(meta.global_dims)}/"
                        f"{meta.dtype}; store a matching array or use offsets"
                    )
                # whole-store replaces previous contents; keep the index
                # high-water mark (a concurrently reserved slot can never be
                # handed out twice) and the declared chunk grid
                self._free_chunks(ctx, meta)
                meta = VariableMeta(
                    name=var_id, dtype=array.dtype, global_dims=gdims,
                    serializer=self.serializer.name,
                    filters=self._filters_token,
                    next_index=meta.next_index,
                    chunk_shape=meta.chunk_shape,
                )
            pieces = self._grid_pieces(meta, offsets, gdims)
            index0 = meta.next_index
            meta.next_index = index0 + len(pieces)
            self.layout.put_meta(ctx, meta)
        # phase 2 (write): payloads stream into PMEM with no metadata lock
        chunks = self._write_pieces(ctx, meta, array, offsets, pieces, index0)
        # phase 3 (publish)
        self._publish_chunks(ctx, var_id, chunks)

    def _store_sub(self, ctx, var_id: str, array: np.ndarray, offsets) -> None:
        with span(ctx, "store.reserve"), self._meta_write(ctx, var_id):
            meta = self.layout.get_meta(ctx, var_id)
            if meta is None:
                raise KeyNotFoundError(
                    f"store({var_id!r}, offsets=...): variable not alloc'd"
                )
            if array.dtype != meta.dtype:
                raise DimensionMismatchError(
                    f"{var_id}: storing {array.dtype} into {meta.dtype} variable"
                )
            meta.validate_subarray(offsets, array.shape)
            pieces = self._grid_pieces(meta, offsets, array.shape)
            index0 = meta.next_index
            meta.next_index = index0 + len(pieces)
            self.layout.put_meta(ctx, meta)
        chunks = self._write_pieces(ctx, meta, array, offsets, pieces, index0)
        self._publish_chunks(ctx, var_id, chunks)

    def _write_pieces(self, ctx, meta, array, offsets, pieces,
                      index0: int) -> list[Chunk]:
        """Store phase 2: write each grid piece of ``array`` (a block at
        ``offsets``) into its own extent.  The filter pipeline (when
        configured) runs per piece, so a partial read later decodes only
        the chunks it touches."""
        if len(pieces) == 1 and pieces[0][1] == tuple(array.shape):
            return [self._write_chunk(ctx, meta, array, pieces[0][0],
                                      index=index0)]
        chunks = []
        for i, (p_off, p_dims) in enumerate(pieces):
            local = tuple(
                slice(po - o, po - o + pd)
                for po, o, pd in zip(p_off, offsets, p_dims)
            )
            piece = np.ascontiguousarray(array[local])
            chunks.append(
                self._write_chunk(ctx, meta, piece, p_off, index=index0 + i)
            )
        return chunks

    def _publish_chunks(self, ctx, var_id: str, chunks: list[Chunk]) -> None:
        """Store phase 3: append the written chunks to the (re-fetched)
        record.  If the variable was deleted between reserve and publish,
        release the orphan extents and surface the conflict."""
        with span(ctx, "store.publish"), self._meta_write(ctx, var_id):
            meta = self.layout.get_meta(ctx, var_id)
            if meta is None:
                for chunk in chunks:
                    self.layout.free_extent(ctx, var_id, chunk)
                raise KeyNotFoundError(
                    f"store({var_id!r}): variable deleted mid-store"
                )
            meta.chunks.extend(chunks)
            self.layout.put_meta(ctx, meta)
        # a republished variable may reuse freed extents: drop stale
        # decoded-chunk cache entries for it
        self._chunk_cache.invalidate(var_id)

    def _write_chunk(self, ctx, meta, array, offsets, index: int) -> Chunk:
        """Serialize ``array`` into a fresh extent; returns the chunk record.

        Unfiltered: streamed directly into the layout's extent (the paper's
        zero-staging path).  Filtered: serialized into a DRAM buffer,
        transformed, then written — a deliberate staging copy bought back
        in PMEM bytes.  Either way the payload flows through the same
        ``alloc_extent`` → ``extent_sink`` → persist pipeline.
        """
        if self.pipeline is None:
            size = self.serializer.packed_size(meta.name, array)
            with span(ctx, "store.alloc", bytes=size):
                extent = self.layout.alloc_extent(ctx, meta.name, index, size)
            sink = self.layout.extent_sink(ctx, extent)
            with span(ctx, "store.serialize", bytes=size):
                self.serializer.pack(ctx, meta.name, array, sink)
        else:
            record(ctx, "pmemcpy_staging_passes")
            with span(ctx, "store.serialize"):
                stage = DramSink(ctx)
                self.serializer.pack(ctx, meta.name, array, stage)
                blob = self.pipeline.encode(ctx, stage.getvalue())
            with span(ctx, "store.alloc", bytes=len(blob)):
                extent = self.layout.alloc_extent(
                    ctx, meta.name, index, len(blob))
            sink = self.layout.extent_sink(ctx, extent)
            sink.write(blob, payload=True)
        with span(ctx, "store.persist"):
            sink.persist()
            extent.close(ctx)
        stored = sink.tell()
        record(ctx, "pmemcpy_stored_write_bytes", stored)
        return Chunk(tuple(offsets), tuple(array.shape), extent.token, stored)

    def _free_chunks(self, ctx, meta) -> None:
        for chunk in meta.chunks:
            self.layout.free_extent(ctx, meta.name, chunk)

    # ------------------------------------------------------------------ load

    def load(
        self,
        var_id: str,
        offsets=None,
        dims=None,
        out: np.ndarray | None = None,
        *,
        selection: Selection | None = None,
        require_full: bool = True,
    ):
        """Load a whole variable (``load<T>(id)``), a subarray
        (``load<T>(id, data, ndims, offsets, dimspp)``), or an arbitrary
        :class:`~.selection.Selection` (``selection=``).

        Unfiltered raw-serialized chunks take the zero-staging partial-read
        path: only the header and the selection's intersecting row segments
        are fetched off the mapped device.  Other serializers deserialize
        each overlapping chunk directly from PMEM; filtered chunks decode
        through the per-handle chunk cache.  Returns a scalar for 0-d
        variables.
        """
        self._require()
        ctx = self._ctx
        t0 = ctx.lb_ns
        try:
            with span(ctx, "pmemcpy.load", var=var_id) as root:
                return self._load(ctx, var_id, offsets, dims, out, selection,
                                  require_full=require_full, root_span=root)
        finally:
            # always-on op latency (survives REPRO_TRACE=off)
            metrics_for(ctx).histogram(
                "pmemcpy.load.ns").observe(ctx.lb_ns - t0)

    def _load(self, ctx, var_id, offsets, dims, out, selection, *,
              require_full, root_span):
        # only the metadata fetch runs under the (shared) guard; chunk
        # payloads stream out afterwards so loads never serialize on data
        with self._meta_read(ctx, var_id):
            meta = self.layout.get_meta(ctx, var_id)
        if meta is None:
            raise KeyNotFoundError(f"load({var_id!r}): no such variable")
        gdims = tuple(meta.global_dims)
        if offsets is not None and dims is not None:
            offsets, dims = as_dims(offsets), as_dims(dims)
            meta.validate_subarray(offsets, dims)
        sel = as_selection(offsets, dims, selection, gdims)

        covering = [
            c for c in meta.chunks if sel.overlap_count(c.offsets, c.dims) > 0
        ]
        if out is None:
            # full-coverage loads over non-overlapping chunks fill every
            # element, so skip the zeroing pass; overlapping chunks could
            # double-count coverage, so they keep the zero fill as the
            # partial-coverage backstop does
            if require_full and _pairwise_disjoint(covering):
                out = np.empty(sel.out_shape, dtype=meta.dtype)
            else:
                out = np.zeros(sel.out_shape, dtype=meta.dtype)
        elif tuple(out.shape) != sel.out_shape or out.dtype != meta.dtype:
            raise DimensionMismatchError(
                f"load({var_id!r}): out buffer {out.shape}/{out.dtype} vs "
                f"requested {sel.out_shape}/{meta.dtype}"
            )

        record(ctx, "pmemcpy_load_ops")
        serializer = get_serializer(meta.serializer)
        pipeline = FilterPipeline(meta.filters.split(",")) if meta.filters else None
        covered = 0
        for chunk in covering:
            if pipeline is not None:
                covered += self._load_chunk_cached(
                    ctx, meta, serializer, pipeline, chunk, sel, out)
            elif serializer.supports_ranged_unpack:
                covered += self._load_chunk_ranged(
                    ctx, meta, serializer, chunk, sel, out)
            else:
                covered += self._load_chunk_staged(
                    ctx, meta, serializer, chunk, sel, out)

        loaded = covered * np.dtype(meta.dtype).itemsize
        record(ctx, "pmemcpy_logical_load_bytes", loaded)
        if root_span is not None:
            root_span.attrs = {**(root_span.attrs or {}), "bytes": loaded}
        if require_full and covered < sel.nelems:
            raise DimensionMismatchError(
                f"load({var_id!r}): requested selection only partially "
                f"stored ({covered}/{sel.nelems} elements; pass "
                f"require_full=False to accept zeros)"
            )
        if out.ndim == 0:
            return out.item()
        return out

    def _load_chunk_staged(self, ctx, meta, serializer, chunk, sel, out) -> int:
        """Deserialize the whole chunk from PMEM (zero-staging for the
        *record*, but every stored byte moves) and scatter the selected
        elements — the path for framed serializers (bp4/cproto/cereal)."""
        with span(ctx, "load.read", bytes=chunk.blob_len):
            source = self.layout.extent_source(ctx, meta.name, chunk)
            _name, arr = serializer.unpack(ctx, source)
            arr = arr.reshape(chunk.dims)
            record(ctx, "pmemcpy_stored_read_bytes", chunk.blob_len)
            return sel.scatter_into(out, arr, chunk.offsets)

    def _load_chunk_ranged(self, ctx, meta, serializer, chunk, sel, out) -> int:
        """The zero-staging *partial*-read path: decode the record header,
        then fetch only the selection's intersecting row segments with
        ``Source.read_at`` — bytes outside the selection never move."""
        itemsize = np.dtype(meta.dtype).itemsize
        with span(ctx, "load.read") as s:
            source = self.layout.extent_source(ctx, meta.name, chunk)
            hdr = serializer.read_header(ctx, source)
            flat = out.reshape(-1) if out.flags.c_contiguous else out.flat
            copied = 0
            payload_read = 0
            for run in sel.runs(chunk.offsets, chunk.dims):
                seg = source.read_at(
                    hdr.payload_off + run.src * itemsize,
                    run.nelems * itemsize, payload=True,
                )
                flat[run.dst : run.dst + run.nelems] = array_from_bytes(
                    seg, meta.dtype, (run.nelems,)
                )
                copied += run.nelems
                payload_read += run.nelems * itemsize
            serializer._charge_unpack_cpu(ctx, payload_read)
            stored_read = hdr.payload_off + payload_read
            record(ctx, "pmemcpy_stored_read_bytes", stored_read)
            if s is not None:
                s.attrs = {**(s.attrs or {}), "bytes": stored_read}
        return copied

    def _load_chunk_cached(self, ctx, meta, serializer, pipeline, chunk,
                           sel, out) -> int:
        """Filtered chunks: fetch the blob, reverse the transforms in DRAM,
        deserialize from the staging buffer — keeping the decoded array in
        the chunk cache so repeated partial reads pay the decode once."""
        key = (meta.name, chunk.blob_off, chunk.blob_len)
        arr = self._chunk_cache.get(key)
        if arr is not None:
            record(ctx, "pmemcpy_chunk_cache_hits")
            with span(ctx, "load.read", bytes=0, cached=True):
                return sel.scatter_into(out, arr, chunk.offsets)
        with span(ctx, "load.read", bytes=chunk.blob_len):
            source = self.layout.extent_source(ctx, meta.name, chunk)
            raw = bytes(source.read(chunk.blob_len, payload=True))
            source = DramSource(ctx, pipeline.decode(ctx, raw))
            _name, arr = serializer.unpack(ctx, source)
            arr = arr.reshape(chunk.dims)
            record(ctx, "pmemcpy_stored_read_bytes", chunk.blob_len)
            record(ctx, "pmemcpy_chunk_cache_misses")
            self._chunk_cache.put(key, arr)
            return sel.scatter_into(out, arr, chunk.offsets)

    def load_dims(self, var_id: str) -> tuple[int, ...]:
        """``load_dims(id, &ndims, &dims)`` (Fig. 2 lines 18-19)."""
        self._require()
        with self._meta_read(self._ctx, var_id):
            meta = self.layout.get_meta(self._ctx, var_id)
        if meta is None:
            raise KeyNotFoundError(f"load_dims({var_id!r}): no such variable")
        return tuple(meta.global_dims)

    # ------------------------------------------------------------------ extras

    def list_variables(self) -> list[str]:
        self._require()
        with self._meta_namespace(self._ctx):
            return self.layout.list_variables(self._ctx)

    def delete(self, var_id: str) -> None:
        self._require()
        ctx = self._ctx
        record(ctx, "pmemcpy_delete_ops")
        with span(ctx, "pmemcpy.delete", var=var_id):
            with self._meta_write(ctx, var_id):
                meta = self.layout.get_meta(ctx, var_id)
                if meta is None:
                    raise KeyNotFoundError(
                        f"delete({var_id!r}): no such variable")
                self.layout.delete_variable(ctx, meta)
        self._chunk_cache.invalidate(var_id)

    def stats(self) -> dict:
        """Store introspection (a ``du``-like view): per-variable chunk
        counts and bytes, backend occupancy via the layout's
        ``occupancy()`` hook, this rank's telemetry counters, and its typed
        metric families.

        The result is a **deep copy**: mutating it can never corrupt the
        layout's metadata or the rank's live telemetry state."""
        self._require()
        ctx = self._ctx
        variables: dict[str, dict] = {}
        with self._meta_namespace(ctx):
            snapshot = [
                (var_id, self.layout.get_meta(ctx, var_id))
                for var_id in self.layout.list_variables(ctx)
            ]
        for var_id, meta in snapshot:
            logical = sum(c.nbytes(meta.dtype) for c in meta.chunks)
            stored = sum(c.blob_len for c in meta.chunks)
            variables[var_id] = {
                "dtype": str(meta.dtype),
                "global_dims": tuple(meta.global_dims),
                "nchunks": len(meta.chunks),
                "logical_bytes": logical,
                "stored_bytes": stored,
                "serializer": meta.serializer,
                "filters": meta.filters,
                "chunk_shape": (tuple(meta.chunk_shape)
                                if meta.chunk_shape is not None else None),
            }
        out = {"variables": variables, "layout": self.layout.name}
        out.update(self.layout.occupancy(ctx))
        out["telemetry"] = counters_for(ctx).as_dict()
        out["metrics"] = metrics_for(ctx).as_dict()
        # p50/p95/p99 for every populated histogram, through the same
        # registry_percentiles code path the service SLO report and the
        # perf observatory render from
        out["percentiles"] = registry_percentiles(metrics_for(ctx))
        if ctx.env is not None and getattr(ctx.env, "device", None) is not None:
            out["device"] = ctx.env.device.persistence_counters()
        return copy.deepcopy(out)
