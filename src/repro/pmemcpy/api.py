"""The pMEMCPY public API (paper Fig. 2)."""

from __future__ import annotations

import math

import numpy as np

from ..errors import (
    DimensionMismatchError,
    KeyNotFoundError,
    NotMappedError,
    PmemcpyError,
)
from ..serial import DramSink, DramSource, get_serializer
from ..serial.filters import FilterPipeline
from .dataset import Chunk, VariableMeta
from .layout_fs import HierarchicalLayout
from .layout_hash import HashtableLayout
from .types import as_dims

_LAYOUTS = {"hashtable": HashtableLayout, "hierarchical": HierarchicalLayout}


class PMEM:
    """A per-rank handle to a pMEMCPY store.

    Mirrors the C++ object of Fig. 2: construct, ``mmap(path, comm)``,
    ``alloc``/``store``/``load``/``load_dims``, ``munmap``.

    Configuration (§3): ``serializer`` ∈ {bp4, cproto, cereal, raw/none},
    ``layout`` ∈ {hashtable, hierarchical}, and ``map_sync`` toggling the
    MAP_SYNC mapping flag (PMCPY-B in the paper's figures).
    """

    def __init__(
        self,
        *,
        serializer: str = "bp4",
        layout: str = "hashtable",
        map_sync: bool = False,
        pool_size: int | None = None,
        nbuckets: int = 64,
        filters: tuple | list = (),
    ):
        self.serializer = get_serializer(serializer)
        if layout not in _LAYOUTS:
            raise PmemcpyError(
                f"unknown layout {layout!r}; choose from {sorted(_LAYOUTS)}"
            )
        if layout == "hashtable":
            self.layout = HashtableLayout(map_sync=map_sync, nbuckets=nbuckets)
        else:
            self.layout = HierarchicalLayout(map_sync=map_sync)
        self.map_sync = map_sync
        self.pool_size = pool_size
        # optional transform pipeline (§2.1-style operators).  Compression
        # trades pMEMCPY's streaming direct-to-PMEM pack for one DRAM
        # staging pass plus fewer PMEM bytes.
        self.pipeline = FilterPipeline(filters) if filters else None
        self._ctx = None
        self._comm = None
        self.path: str | None = None

    @property
    def _filters_token(self) -> str:
        return ",".join(self.pipeline.names) if self.pipeline else ""

    # ------------------------------------------------------------------ mapping

    def mmap(self, path: str, comm) -> "PMEM":
        """Collective: map the store at ``path`` on every rank of ``comm``."""
        ctx = comm.ctx
        if ctx.env is None:
            raise PmemcpyError(
                "PMEM needs a cluster environment: run under "
                "Cluster.run(...) or run_spmd(..., env=cluster)"
            )
        pool_size = self.pool_size
        if pool_size is None:
            pool_size = ctx.env.device.capacity // 2
        self.layout.setup(ctx, comm, path, pool_size=pool_size)
        self._ctx = ctx
        self._comm = comm
        self.path = path
        return self

    def munmap(self) -> None:
        self._require()
        self.layout.teardown(self._ctx, self._comm)
        self._ctx = None
        self._comm = None
        self.path = None

    def _require(self):
        if self._ctx is None:
            raise NotMappedError("PMEM is not mapped — call mmap(path, comm)")

    @property
    def ctx(self):
        self._require()
        return self._ctx

    # ------------------------------------------------------------------ alloc

    def alloc(self, var_id: str, dims, dtype=np.float64) -> None:
        """Declare the global dimensions of ``var_id`` (Fig. 2 lines 7-10).

        Idempotent and safe to call from every rank (first caller creates;
        later callers validate)."""
        self._require()
        ctx = self._ctx
        gdims = as_dims(dims)
        dt = np.dtype(dtype)
        with self.layout.meta_lock(ctx):
            meta = self.layout.get_meta(ctx, var_id)
            if meta is None:
                meta = VariableMeta(
                    name=var_id, dtype=dt, global_dims=gdims,
                    serializer=self.serializer.name,
                    filters=self._filters_token,
                )
                self.layout.put_meta(ctx, meta)
            else:
                if tuple(meta.global_dims) != gdims or meta.dtype != dt:
                    raise DimensionMismatchError(
                        f"alloc({var_id!r}): existing dims "
                        f"{tuple(meta.global_dims)}/{meta.dtype} != "
                        f"requested {gdims}/{dt}"
                    )

    # ------------------------------------------------------------------ store

    def store(self, var_id: str, data, offsets=None) -> None:
        """Store a whole object (``store<T>(id, data)``) or a subarray of an
        alloc'd variable (``store<T>(id, data, ndims, offsets, dimspp)``)."""
        self._require()
        ctx = self._ctx
        array = np.asarray(data)
        if offsets is None:
            self._store_whole(ctx, var_id, array)
        else:
            self._store_sub(ctx, var_id, array, as_dims(offsets))

    def _store_whole(self, ctx, var_id: str, array: np.ndarray) -> None:
        gdims = tuple(array.shape)
        offsets = tuple(0 for _ in gdims)
        with self.layout.meta_lock(ctx):
            meta = self.layout.get_meta(ctx, var_id)
            if meta is None:
                meta = VariableMeta(
                    name=var_id, dtype=array.dtype, global_dims=gdims,
                    serializer=self.serializer.name,
                    filters=self._filters_token,
                )
            else:
                # whole-store replaces previous contents
                self._free_chunks(ctx, meta)
                meta = VariableMeta(
                    name=var_id, dtype=array.dtype, global_dims=gdims,
                    serializer=self.serializer.name,
                    filters=self._filters_token,
                )
            chunk = self._write_chunk(ctx, meta, array, offsets, index=0)
            meta.chunks.append(chunk)
            self.layout.put_meta(ctx, meta)

    def _store_sub(self, ctx, var_id: str, array: np.ndarray, offsets) -> None:
        with self.layout.meta_lock(ctx):
            meta = self.layout.get_meta(ctx, var_id)
            if meta is None:
                raise KeyNotFoundError(
                    f"store({var_id!r}, offsets=...): variable not alloc'd"
                )
            if array.dtype != meta.dtype:
                raise DimensionMismatchError(
                    f"{var_id}: storing {array.dtype} into {meta.dtype} variable"
                )
            meta.validate_subarray(offsets, array.shape)
            chunk = self._write_chunk(
                ctx, meta, array, offsets, index=len(meta.chunks)
            )
            meta.chunks.append(chunk)
            self.layout.put_meta(ctx, meta)

    def _write_chunk(self, ctx, meta, array, offsets, index: int) -> Chunk:
        """Serialize ``array`` into PMEM; returns the chunk record.

        Unfiltered: streamed directly into the mapped pool/chunk file (the
        paper's zero-staging path).  Filtered: serialized into a DRAM
        buffer, transformed, then written — a deliberate staging copy
        bought back in PMEM bytes.
        """
        if self.pipeline is None:
            size = self.serializer.packed_size(meta.name, array)
            if isinstance(self.layout, HashtableLayout):
                blob = self.layout.alloc_blob(ctx, size)
                sink = self.layout.blob_sink(ctx, blob)
                self.serializer.pack(ctx, meta.name, array, sink)
                sink.persist()
                return Chunk(tuple(offsets), tuple(array.shape), blob, size)
            mapping = self.layout.create_chunk(ctx, meta.name, index, size)
            sink = self.layout.chunk_sink(ctx, mapping)
            self.serializer.pack(ctx, meta.name, array, sink)
            sink.persist()
            mapping.unmap(ctx)
            return Chunk(tuple(offsets), tuple(array.shape), index, size)

        stage = DramSink(ctx)
        self.serializer.pack(ctx, meta.name, array, stage)
        blob_bytes = self.pipeline.encode(ctx, stage.getvalue())
        mb = ctx.model_bytes(len(blob_bytes))
        if isinstance(self.layout, HashtableLayout):
            blob = self.layout.alloc_blob(ctx, len(blob_bytes))
            self.layout.pool.write(ctx, blob, blob_bytes, model_bytes=mb)
            self.layout.pool.persist(ctx, blob, len(blob_bytes))
            return Chunk(tuple(offsets), tuple(array.shape), blob, len(blob_bytes))
        mapping = self.layout.create_chunk(ctx, meta.name, index, len(blob_bytes))
        mapping.write(ctx, 0, blob_bytes, model_bytes=mb)
        mapping.persist(ctx, 0, len(blob_bytes))
        mapping.unmap(ctx)
        return Chunk(tuple(offsets), tuple(array.shape), index, len(blob_bytes))

    def _free_chunks(self, ctx, meta) -> None:
        if isinstance(self.layout, HashtableLayout):
            for c in meta.chunks:
                self.layout.pool.free(ctx, c.blob_off)
        else:
            for k in range(len(meta.chunks)):
                ctx.env.vfs.unlink(ctx, self.layout.chunk_path(ctx, meta.name, k))

    # ------------------------------------------------------------------ load

    def load(
        self,
        var_id: str,
        offsets=None,
        dims=None,
        out: np.ndarray | None = None,
        *,
        require_full: bool = True,
    ):
        """Load a whole variable (``load<T>(id)``) or a subarray
        (``load<T>(id, data, ndims, offsets, dimspp)``).

        Deserializes each overlapping chunk directly from PMEM — the
        zero-staging read path — and assembles the requested block.
        Returns a scalar for 0-d variables.
        """
        self._require()
        ctx = self._ctx
        meta = self.layout.get_meta(ctx, var_id)
        if meta is None:
            raise KeyNotFoundError(f"load({var_id!r}): no such variable")
        gdims = tuple(meta.global_dims)
        if offsets is None and dims is None:
            offsets = tuple(0 for _ in gdims)
            dims = gdims
        elif offsets is None or dims is None:
            raise DimensionMismatchError(
                "load: offsets and dims must be given together"
            )
        else:
            offsets, dims = as_dims(offsets), as_dims(dims)
            meta.validate_subarray(offsets, dims)

        if out is None:
            out = np.zeros(dims, dtype=meta.dtype)
        elif tuple(out.shape) != tuple(dims) or out.dtype != meta.dtype:
            raise DimensionMismatchError(
                f"load({var_id!r}): out buffer {out.shape}/{out.dtype} vs "
                f"requested {dims}/{meta.dtype}"
            )

        serializer = get_serializer(meta.serializer)
        pipeline = FilterPipeline(meta.filters.split(",")) if meta.filters else None
        covered = 0
        for chunk in meta.covering_chunks(offsets, dims):
            if pipeline is not None:
                # filtered chunks: fetch the blob, reverse the transforms in
                # DRAM, then deserialize from the staging buffer
                if isinstance(self.layout, HashtableLayout):
                    raw = bytes(self.layout.pool.read(
                        ctx, chunk.blob_off, chunk.blob_len,
                        model_bytes=ctx.model_bytes(chunk.blob_len),
                    ))
                else:
                    mapping = self.layout.open_chunk(ctx, meta.name, chunk.blob_off)
                    raw = bytes(mapping.read(
                        ctx, 0, chunk.blob_len,
                        model_bytes=ctx.model_bytes(chunk.blob_len),
                    ))
                    mapping.unmap(ctx)
                decoded = pipeline.decode(ctx, raw)
                source = DramSource(ctx, decoded)
            elif isinstance(self.layout, HashtableLayout):
                source = self.layout.blob_source(ctx, chunk)
            else:
                source = self.layout.chunk_source(ctx, meta.name, chunk)
            _name, arr = serializer.unpack(ctx, source)
            arr = arr.reshape(chunk.dims)
            # intersection in global coordinates
            lo = tuple(max(o, co) for o, co in zip(offsets, chunk.offsets))
            hi = tuple(
                min(o + d, co + cd)
                for o, d, co, cd in zip(offsets, dims, chunk.offsets, chunk.dims)
            )
            src_sl = tuple(
                slice(l - co, h - co) for l, h, co in zip(lo, hi, chunk.offsets)
            )
            dst_sl = tuple(
                slice(l - o, h - o) for l, h, o in zip(lo, hi, offsets)
            )
            out[dst_sl] = arr[src_sl]
            covered += math.prod(h - l for l, h in zip(lo, hi))

        if require_full and covered < math.prod(dims):
            raise DimensionMismatchError(
                f"load({var_id!r}): requested block only partially stored "
                f"({covered}/{math.prod(dims)} elements; pass "
                f"require_full=False to accept zeros)"
            )
        if out.ndim == 0:
            return out.item()
        return out

    def load_dims(self, var_id: str) -> tuple[int, ...]:
        """``load_dims(id, &ndims, &dims)`` (Fig. 2 lines 18-19)."""
        self._require()
        meta = self.layout.get_meta(self._ctx, var_id)
        if meta is None:
            raise KeyNotFoundError(f"load_dims({var_id!r}): no such variable")
        return tuple(meta.global_dims)

    # ------------------------------------------------------------------ extras

    def list_variables(self) -> list[str]:
        self._require()
        return self.layout.list_variables(self._ctx)

    def delete(self, var_id: str) -> None:
        self._require()
        ctx = self._ctx
        with self.layout.meta_lock(ctx):
            meta = self.layout.get_meta(ctx, var_id)
            if meta is None:
                raise KeyNotFoundError(f"delete({var_id!r}): no such variable")
            self.layout.delete_variable(ctx, meta)

    def stats(self) -> dict:
        """Store introspection (a ``du``-like view): per-variable chunk
        counts and bytes, plus heap occupancy for the hashtable layout."""
        self._require()
        ctx = self._ctx
        variables: dict[str, dict] = {}
        for var_id in self.layout.list_variables(ctx):
            meta = self.layout.get_meta(ctx, var_id)
            logical = sum(c.nbytes(meta.dtype) for c in meta.chunks)
            stored = sum(c.blob_len for c in meta.chunks)
            variables[var_id] = {
                "dtype": str(meta.dtype),
                "global_dims": tuple(meta.global_dims),
                "nchunks": len(meta.chunks),
                "logical_bytes": logical,
                "stored_bytes": stored,
                "serializer": meta.serializer,
                "filters": meta.filters,
            }
        out = {"variables": variables, "layout": self.layout.name}
        if isinstance(self.layout, HashtableLayout):
            heap = self.layout.pool.heap
            out["heap"] = {
                "used_bytes": heap.used_bytes(),
                "free_bytes": heap.free_bytes(),
                "free_blocks": heap.n_free_blocks(),
                "largest_free_block": heap.largest_free_block(),
            }
        return out
