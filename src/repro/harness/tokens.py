"""Source-complexity metrics for the §3 API comparison (E3).

The paper counts lines and tokens of equivalent programs (pMEMCPY 16
lines / 132 tokens; HDF5 42 / 253; ADIOS 24 / 164).  We apply the same
metric to the Python example programs written against our APIs, using the
stdlib tokenizer: tokens are every lexical token except comments, blank
structure (NL/NEWLINE/INDENT/DEDENT), and file framing; lines are logical
non-blank, non-comment source lines.
"""

from __future__ import annotations

import io
import tokenize

_SKIP = {
    tokenize.COMMENT,
    tokenize.NL,
    tokenize.NEWLINE,
    tokenize.INDENT,
    tokenize.DEDENT,
    tokenize.ENCODING,
    tokenize.ENDMARKER,
}


def count_source_metrics(source: str) -> dict[str, int]:
    """{'lines': ..., 'tokens': ...} for a Python source string.

    Docstrings at module top are treated as comments (they document, they
    don't do) and excluded along with the lines they occupy.
    """
    tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    # drop a leading module docstring (optional framing)
    body = [t for t in tokens if t.type not in _SKIP]
    if body and body[0].type == tokenize.STRING and body[0].start[1] == 0:
        doc = body[0]
        body = body[1:]
        doc_lines = set(range(doc.start[0], doc.end[0] + 1))
    else:
        doc_lines = set()
    token_count = len(body)
    line_numbers = {
        t.start[0]
        for t in body
        if t.start[0] not in doc_lines
    }
    return {"lines": len(line_numbers), "tokens": token_count}


def count_file_metrics(path: str) -> dict[str, int]:
    with open(path) as f:
        return count_source_metrics(f.read())
