"""Experiment runner for the paper's evaluation section."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster import Cluster
from ..config import DEFAULT_MACHINE, MachineSpec
from ..sim.stats import summarize
from ..telemetry import merged_counters, merged_metrics, spans_of
from ..telemetry.export import spans_to_dicts
from ..units import MiB
from ..workloads import Domain3D, read_job, write_job

#: the paper's series (Figs. 6-7) -> (driver name, driver kwargs)
PAPER_LIBRARIES: dict[str, tuple[str, dict]] = {
    "ADIOS": ("adios", {}),
    "NetCDF": ("netcdf4", {}),
    "pNetCDF": ("pnetcdf", {}),
    # PMCPY-A keeps the single-lane (global-mutex-equivalent) metadata
    # path; PMCPY-B runs the striped reader-writer metadata layer
    "PMCPY-A": ("pmemcpy", {"map_sync": False, "meta_stripes": 1,
                            "meta_rw": False}),
    "PMCPY-B": ("pmemcpy", {"map_sync": True, "meta_stripes": 64,
                            "meta_rw": True}),
}

#: Fig. 6/7 x-axis
PAPER_PROC_COUNTS = (8, 16, 24, 32, 48)


@dataclass
class JobResult:
    library: str
    nprocs: int
    direction: str           # "write" | "read"
    seconds: float
    phases: dict[str, float] = field(default_factory=dict)  # seconds
    telemetry: dict[str, float] = field(default_factory=dict)  # merged counters
    metrics: dict = field(default_factory=dict)   # MetricRegistry.as_dict()
    spans: list = field(default_factory=list)     # span dicts (trace export)
    engine: str = "threads"  # rank engine that executed the run
    #: full repro-critpath/1 document of the run's causal replay (path
    #: steps, lock hand-offs, contention stats) — written by --critpath-out
    critpath: dict | None = None

    def row(self) -> tuple:
        return (self.library, self.nprocs, self.direction, round(self.seconds, 3))

    def job_id(self) -> str:
        return f"{self.library}_{self.direction}_{self.nprocs}p"

    def perf_record(self) -> dict:
        """The perf-scenario view of this job (:mod:`repro.perf`): exact
        modeled time, exclusive time per span family for regression
        attribution, the per-family latency percentiles, and the compact
        critical-path summary the compare gate diffs on failure."""
        from ..telemetry.export import span_latency_percentiles, spans_from_dicts
        from ..telemetry.metrics import MetricRegistry
        from ..telemetry.spans import exclusive_ns_by_family

        reg = MetricRegistry.from_dict(self.metrics)
        rec = {
            "modeled_ns": self.seconds * 1e9,
            "families": exclusive_ns_by_family(spans_from_dicts(self.spans)),
            "latency": span_latency_percentiles(reg),
        }
        if self.critpath is not None:
            rec["critpath"] = {
                "total_ns": self.critpath["total_ns"],
                "families": self.critpath["families"],
                "source": self.critpath["source"],
            }
        return rec


def _cluster_for(workload: Domain3D, machine: MachineSpec) -> Cluster:
    capacity = max(64 * MiB, 8 * workload.functional_total_bytes)
    return Cluster(machine=machine, scale=workload.scale, pmem_capacity=capacity)


def _job_result(library: str, nprocs: int, direction: str, res, cl) -> JobResult:
    """Fold one SPMD run into a JobResult: makespan + phase seconds, the
    merged flat counters (plus the legacy-format expansion of the typed
    metric families, so ``--profile`` keeps its historical key set), the
    cross-rank :class:`MetricRegistry`, and the span dicts for trace
    export."""
    from ..telemetry.critpath import (
        critical_path_spmd,
        critpath_doc,
        offer_capture,
    )

    offer_capture("spmd", res)
    timing = res.time()
    reg = merged_metrics(res.traces)
    tel = merged_counters(res.traces).as_dict()
    tel.update(reg.legacy_counters())
    tel.update(cl.device.persistence_counters())
    return JobResult(
        library, nprocs, direction, timing.makespan_ns / 1e9,
        {k: v / 1e9 for k, v in timing.phase_totals().items()},
        tel,
        reg.as_dict(),
        spans_to_dicts(spans_of(res.traces)),
        engine=res.engine,
        critpath=critpath_doc(critical_path_spmd(res)),
    )


def run_io_experiment(
    library: str,
    nprocs: int,
    workload: Domain3D | None = None,
    *,
    machine: MachineSpec = DEFAULT_MACHINE,
    directions: tuple[str, ...] = ("write", "read"),
    driver_override: tuple[str, dict] | None = None,
    engine: str | None = None,
) -> list[JobResult]:
    """One cell of Fig. 6/7: write the 40 GB domain with ``library`` on
    ``nprocs`` ranks, then read it back symmetrically.  Returns one
    JobResult per direction.  ``engine`` picks the rank engine (else
    ``REPRO_ENGINE``, else threads)."""
    workload = workload or Domain3D()
    driver_name, driver_kw = (
        driver_override if driver_override else PAPER_LIBRARIES[library]
    )
    cl = _cluster_for(workload, machine)
    path = "/pmem/eval"
    out: list[JobResult] = []

    res_w = cl.run(
        nprocs,
        lambda ctx: write_job(ctx, workload, driver_name, path, driver_kw),
        engine=engine,
    )
    if "write" in directions:
        out.append(_job_result(library, nprocs, "write", res_w, cl))
    if "read" in directions:
        res_r = cl.run(
            nprocs,
            lambda ctx: read_job(ctx, workload, driver_name, path, driver_kw),
            engine=engine,
        )
        out.append(_job_result(library, nprocs, "read", res_r, cl))
    return out


def run_sweep(
    *,
    libraries: dict[str, tuple[str, dict]] | None = None,
    proc_counts: tuple[int, ...] = PAPER_PROC_COUNTS,
    workload: Domain3D | None = None,
    machine: MachineSpec = DEFAULT_MACHINE,
    directions: tuple[str, ...] = ("write", "read"),
) -> list[JobResult]:
    """The full Fig. 6 + Fig. 7 sweep."""
    libraries = libraries or PAPER_LIBRARIES
    workload = workload or Domain3D()
    results: list[JobResult] = []
    for label, (driver, kw) in libraries.items():
        for p in proc_counts:
            results.extend(
                run_io_experiment(
                    label, p, workload, machine=machine,
                    directions=directions,
                    driver_override=(driver, kw),
                )
            )
    return results


def series_from(results: list[JobResult], direction: str) -> dict[str, dict[int, float]]:
    """{library: {nprocs: seconds}} for one direction."""
    out: dict[str, dict[int, float]] = {}
    for r in results:
        if r.direction == direction:
            out.setdefault(r.library, {})[r.nprocs] = r.seconds
    return out


def breakdown_experiment(
    nprocs: int = 24,
    workload: Domain3D | None = None,
    *,
    machine: MachineSpec = DEFAULT_MACHINE,
) -> dict[str, dict]:
    """E7: per-phase / per-resource decomposition of each library's write
    and read at the paper's 24-core sweet spot."""
    workload = workload or Domain3D()
    out: dict[str, dict] = {}
    for label, (driver, kw) in PAPER_LIBRARIES.items():
        cl = _cluster_for(workload, machine)
        path = "/pmem/bd"
        res_w = cl.run(
            nprocs, lambda ctx: write_job(ctx, workload, driver, path, kw)
        )
        res_r = cl.run(
            nprocs, lambda ctx: read_job(ctx, workload, driver, path, kw)
        )
        out[label] = {
            "write": summarize(res_w.time()),
            "read": summarize(res_r.time()),
        }
    return out
