"""Table/chart rendering and CSV export for experiment results.

Float cells are formatted through :func:`fmt_float` everywhere — a fixed
number of significant digits, so regenerated tables and CSVs are
byte-stable across runs and never leak repr noise like
``0.30000000000000004``.
"""

from __future__ import annotations

import csv
import math
import os

#: significant digits for float cells in tables and CSVs
FLOAT_DIGITS = 6


def fmt_float(value, digits: int = FLOAT_DIGITS) -> str:
    """Deterministic cell rendering: floats get ``digits`` significant
    digits (``0.3``, not ``0.30000000000000004``); everything else is
    ``str``."""
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            return str(value)
        if value == int(value) and abs(value) < 10 ** digits:
            return str(int(value))
        return f"{value:.{digits}g}"
    return str(value)


def render_table(
    title: str,
    header: list[str],
    rows: list[tuple],
) -> str:
    """Fixed-width ASCII table."""
    cells = [[fmt_float(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(header)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [f"== {title} =="]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_chart(
    title: str,
    series: dict[str, dict[int, float]],
    *,
    unit: str = "s",
    width: int = 48,
) -> str:
    """Horizontal-bar rendering of {series: {x: y}} — one bar per (x,
    series), grouped by x, like the paper's grouped bar charts."""
    xs = sorted({x for vals in series.values() for x in vals})
    vmax = max((v for vals in series.values() for v in vals.values()), default=1.0)
    label_w = max(len(name) for name in series) if series else 4
    lines = [f"== {title} =="]
    for x in xs:
        lines.append(f"#procs = {x}")
        for name in series:
            v = series[name].get(x)
            if v is None:
                continue
            bar = "#" * max(1, round(width * v / vmax))
            lines.append(f"  {name.ljust(label_w)} {bar} {v:.3f}{unit}")
    return "\n".join(lines)


def write_csv(path: str, header: list[str], rows: list[tuple]) -> str:
    """Write rows to ``path`` (directories created); returns the path.

    Float cells go through :func:`fmt_float`, so the file's bytes are a
    pure function of the data."""
    d = os.path.dirname(path)
    if d:
        os.makedirs(d, exist_ok=True)
    with open(path, "w", newline="") as f:
        w = csv.writer(f)
        w.writerow(header)
        for row in rows:
            w.writerow([fmt_float(c) if isinstance(c, float) else c
                        for c in row])
    return path


def series_to_rows(series: dict[str, dict[int, float]]) -> list[tuple]:
    rows = []
    for name, vals in series.items():
        for x, y in sorted(vals.items()):
            rows.append((name, x, round(y, 4)))
    return rows
