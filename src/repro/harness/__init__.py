"""Experiment harness: runs the paper's evaluations against the simulated
node and renders/exports the resulting tables and figures.

``python -m repro.harness <fig6|fig7|api|breakdown|...>`` regenerates each
artifact from the command line; the ``benchmarks/`` tree drives the same
entry points under pytest-benchmark.
"""

from .experiment import (
    JobResult,
    PAPER_LIBRARIES,
    PAPER_PROC_COUNTS,
    run_io_experiment,
    run_sweep,
)
from .figures import ascii_chart, render_table, write_csv
from .tokens import count_source_metrics

__all__ = [
    "JobResult",
    "PAPER_LIBRARIES",
    "PAPER_PROC_COUNTS",
    "run_io_experiment",
    "run_sweep",
    "ascii_chart",
    "render_table",
    "write_csv",
    "count_source_metrics",
]
