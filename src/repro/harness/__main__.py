"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.harness fig6            # write perf (Fig. 6)
    python -m repro.harness fig7            # read perf (Fig. 7)
    python -m repro.harness api             # §3 API complexity table
    python -m repro.harness breakdown       # E7 copy-path decomposition
    python -m repro.harness utilization     # per-library resource bottlenecks
    python -m repro.harness all
    options: --procs 8,16,24,32,48  --axis-scale 12  --out results/
             --profile   # print per-job I/O telemetry counter tables
             --trace-out DIR    # one Chrome/Perfetto trace JSON per job
             --metrics-out FILE # per-job typed metric registries (JSON)
             --critpath-out DIR # one repro-critpath/1 JSON per job
             --flame-out DIR    # one folded flamegraph stack file per job
"""

from __future__ import annotations

import argparse
import os
import sys

from ..workloads import Domain3D
from .experiment import (
    PAPER_PROC_COUNTS,
    breakdown_experiment,
    run_sweep,
    series_from,
)
from .figures import ascii_chart, render_table, series_to_rows, write_csv
from .tokens import count_file_metrics

#: the paper's own counts for the equivalent C/C++ programs (§3)
PAPER_API_COUNTS = {
    "pmemcpy": {"lines": 16, "tokens": 132},
    "hdf5": {"lines": 42, "tokens": 253},
    "adios": {"lines": 24, "tokens": 164},
}


def _workload(args) -> Domain3D:
    return Domain3D(axis_scale=args.axis_scale)


def cmd_figures(args, directions) -> None:
    workload = _workload(args)
    procs = tuple(int(p) for p in args.procs.split(","))
    results = run_sweep(
        proc_counts=procs, workload=workload, directions=directions
    )
    if args.profile:
        from ..telemetry import Counters

        for r in results:
            c = Counters()
            for k, v in r.telemetry.items():
                c.add(k, v)
            print(c.render(
                f"{r.library} {r.direction} @{r.nprocs} procs — I/O telemetry"
            ))
            print()
    if args.trace_out:
        from ..telemetry.export import (
            chrome_trace, spans_from_dicts, write_json,
        )

        os.makedirs(args.trace_out, exist_ok=True)
        for r in results:
            doc = chrome_trace(spans_from_dicts(r.spans),
                               process_name=r.job_id())
            path = os.path.join(args.trace_out, f"{r.job_id()}.trace.json")
            write_json(path, doc)
            print(f"[trace] {path}")
    if args.critpath_out:
        from ..telemetry.export import write_json

        os.makedirs(args.critpath_out, exist_ok=True)
        for r in results:
            if r.critpath is None:
                continue
            path = os.path.join(args.critpath_out,
                                f"{r.job_id()}.critpath.json")
            write_json(path, r.critpath)
            print(f"[critpath] {path}")
    if args.flame_out:
        from ..telemetry.export import spans_from_dicts
        from ..telemetry.flame import write_folded

        os.makedirs(args.flame_out, exist_ok=True)
        for r in results:
            path = os.path.join(args.flame_out, f"{r.job_id()}.folded")
            write_folded(path, spans_from_dicts(r.spans))
            print(f"[flame] {path}")
    if args.metrics_out:
        from ..telemetry.export import write_json

        doc = {r.job_id(): r.metrics for r in results}
        write_json(args.metrics_out, doc)
        print(f"[metrics] {args.metrics_out}")
    for direction, fig in (("write", "fig6"), ("read", "fig7")):
        if direction not in directions:
            continue
        series = series_from(results, direction)
        title = (
            f"Fig. {'6' if direction == 'write' else '7'}: "
            f"{direction} time of a "
            f"{workload.model_total_bytes / 1e9:.0f} GB 3-D domain "
            f"(modeled seconds)"
        )
        print(ascii_chart(title, series))
        print()
        rows = series_to_rows(series)
        path = write_csv(
            os.path.join(args.out, f"{fig}_{direction}.csv"),
            ["library", "nprocs", "seconds"],
            rows,
        )
        print(f"[csv] {path}")
        print(render_table(title, ["library", "nprocs", "seconds"], rows))
        print()


def cmd_api(args) -> None:
    base = os.path.join(os.path.dirname(__file__), "..", "..", "..",
                        "examples", "api_complexity")
    base = os.path.normpath(base)
    rows = []
    for lib in ("pmemcpy", "adios", "hdf5", "pnetcdf"):
        path = os.path.join(base, f"write_{lib}.py")
        if not os.path.exists(path):
            continue
        m = count_file_metrics(path)
        paper = PAPER_API_COUNTS.get(lib, {})
        rows.append((
            lib, m["lines"], m["tokens"],
            paper.get("lines", "-"), paper.get("tokens", "-"),
        ))
    table = render_table(
        "E3: API complexity — equivalent parallel 1-D array write",
        ["library", "lines (ours)", "tokens (ours)",
         "lines (paper)", "tokens (paper)"],
        rows,
    )
    print(table)
    write_csv(
        os.path.join(args.out, "api_complexity.csv"),
        ["library", "lines_ours", "tokens_ours", "lines_paper", "tokens_paper"],
        rows,
    )


def cmd_breakdown(args) -> None:
    res = breakdown_experiment(nprocs=24, workload=_workload(args))
    for label, dirs in res.items():
        for direction, pb in dirs.items():
            print(pb.render(f"{label} {direction} @24 procs"))
            print()


def cmd_utilization(args) -> None:
    from ..config import DEFAULT_MACHINE
    from ..sim import build_standard_resources, utilization
    from ..workloads import read_job, write_job
    from .experiment import PAPER_LIBRARIES, _cluster_for

    workload = _workload(args)
    resources = build_standard_resources(DEFAULT_MACHINE)
    for label, (driver, kw) in PAPER_LIBRARIES.items():
        cl = _cluster_for(workload, DEFAULT_MACHINE)
        res_w = cl.run(
            24, lambda ctx: write_job(ctx, workload, driver, "/pmem/u", kw)
        )
        res_r = cl.run(
            24, lambda ctx: read_job(ctx, workload, driver, "/pmem/u", kw)
        )
        for direction, res in (("write", res_w), ("read", res_r)):
            u = utilization(res.traces, res.time(), resources)
            print(u.render(f"{label} {direction} @24 procs"))
            print()


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="repro.harness", description=__doc__)
    ap.add_argument("command", choices=["fig6", "fig7", "api", "breakdown", "utilization", "all"])
    ap.add_argument("--procs", default=",".join(map(str, PAPER_PROC_COUNTS)))
    ap.add_argument("--axis-scale", type=int, default=10,
                    help="shrink factor per axis for the functional pass")
    ap.add_argument("--out", default="results")
    ap.add_argument("--profile", action="store_true",
                    help="print merged telemetry counters for each job")
    ap.add_argument("--trace-out", default=None, metavar="DIR",
                    help="write one Chrome/Perfetto trace JSON per job")
    ap.add_argument("--metrics-out", default=None, metavar="FILE",
                    help="write per-job typed metric registries as JSON")
    ap.add_argument("--critpath-out", default=None, metavar="DIR",
                    help="write one repro-critpath/1 JSON per job")
    ap.add_argument("--flame-out", default=None, metavar="DIR",
                    help="write one folded flamegraph stack file per job")
    args = ap.parse_args(argv)

    if args.command == "fig6":
        cmd_figures(args, ("write",))
    elif args.command == "fig7":
        cmd_figures(args, ("read",))
    elif args.command == "api":
        cmd_api(args)
    elif args.command == "breakdown":
        cmd_breakdown(args)
    elif args.command == "utilization":
        cmd_utilization(args)
    else:
        cmd_figures(args, ("write", "read"))
        cmd_api(args)
        cmd_breakdown(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
