"""Declarative registry of tracked perf scenarios.

Every scenario is one named, self-contained measurement job: calling
:attr:`Scenario.run` executes the workload end to end and returns the
perf record the observatory tracks::

    {"modeled_ns": float,                 # exact makespan, modeled clock
     "families":   {family: exclusive_ns},  # span-diff attribution input
     "latency":    {family: {"p50": ..., "p95": ..., "p99": ...}}}

Scenario classes (ISSUE 5):

- ``fig6.*`` / ``fig7.*`` — the paper's write/read sweep per driver at
  8/24/48 procs, on a trimmed Fig. 6 workload (4 vars of the 800^3
  domain, functional buffers shrunk 20x) so a full registry pass stays
  CI-sized while modeled numbers keep the paper's shape;
- ``pmdk.*`` — allocator-churn and transaction-commit micros;
- ``meta.*`` — striped vs. single-lane metadata locking under 8 ranks;
- ``mem.*`` — the single-rank memcpy/persist hot path.

``deterministic`` marks scenarios whose modeled_ns reproduces *exactly*
across runs (single-rank jobs).  Multi-rank fig sweeps carry
parts-per-million jitter from thread-arrival order in the functional
pass — far below the ±1% modeled gate; the lock-contention scenarios
jitter ~1% (replayed queueing order) and declare a wider
``modeled_tolerance_frac`` instead (DESIGN.md §10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..units import MiB

#: the trimmed Fig. 6/7 workload every fig scenario shares
PERF_NVARS = 4
PERF_AXIS_SCALE = 20

#: the paper's x-axis, trimmed to the three interesting operating points
FIG_PROCS = (8, 24, 48)
#: the --quick budget keeps only the 8-proc cells
QUICK_FIG_PROCS = (8,)

GROUPS = ("fig6", "fig7", "pmdk", "meta", "mem", "procs", "partial",
          "service")


@dataclass(frozen=True)
class Scenario:
    """One tracked perf scenario."""

    name: str            # e.g. "fig6.PMCPY-A.8p"
    group: str           # one of GROUPS
    quick: bool          # included in the --quick budget
    deterministic: bool  # modeled_ns reproduces exactly across runs
    run: Callable[[], dict]
    #: scenarios whose replayed lock-queueing order carries known modeled
    #: jitter widen their own gate beyond the global ±1% (compare takes
    #: the max); None = the global gate applies
    modeled_tolerance_frac: float | None = None
    #: rank engine the scenario executes under (baseline column; compare
    #: refuses to gate a run against a different engine's figures)
    engine: str = "threads"
    #: returns a human-readable reason to skip on this host, or None;
    #: measure_all logs the reason and omits the scenario
    skip: Callable[[], str | None] | None = None


_REGISTRY: dict[str, Scenario] = {}


def _register(s: Scenario) -> None:
    if s.name in _REGISTRY:
        raise ValueError(f"duplicate scenario {s.name!r}")
    if s.group not in GROUPS:
        raise ValueError(f"scenario {s.name!r}: unknown group {s.group!r}")
    _REGISTRY[s.name] = s


def all_scenarios() -> tuple[Scenario, ...]:
    return tuple(_REGISTRY.values())


def get(name: str) -> Scenario:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def select(*, quick: bool = False, names=None, groups=None) -> list[Scenario]:
    """The scenarios a run covers, in registration order."""
    if names:
        return [get(n) for n in names]
    out = [
        s for s in _REGISTRY.values()
        if (not quick or s.quick) and (not groups or s.group in groups)
    ]
    if not out:
        raise ValueError("selection matched no scenarios")
    return out


# ---------------------------------------------------------------------------
# shared measurement plumbing
# ---------------------------------------------------------------------------

def perf_workload():
    from ..workloads import Domain3D

    return Domain3D(nvars=PERF_NVARS, axis_scale=PERF_AXIS_SCALE)


def record_from_spmd(res) -> dict:
    """Fold a finished :class:`~repro.sim.engine.SpmdResult` into the
    scenario perf record (the non-harness twin of
    :meth:`~repro.harness.experiment.JobResult.perf_record`)."""
    from ..telemetry import exclusive_ns_by_family, merged_metrics
    from ..telemetry.critpath import (
        critical_path_spmd,
        critpath_summary,
        offer_capture,
    )
    from ..telemetry.export import span_latency_percentiles

    offer_capture("spmd", res)
    return {
        "modeled_ns": res.time().makespan_ns,
        "families": exclusive_ns_by_family(res.traces),
        "latency": span_latency_percentiles(merged_metrics(res.traces)),
        "critpath": critpath_summary(critical_path_spmd(res)),
    }


# ---------------------------------------------------------------------------
# fig6 / fig7 sweeps
# ---------------------------------------------------------------------------

def _fig_run(library: str, nprocs: int, direction: str) -> Callable[[], dict]:
    def job() -> dict:
        from ..harness.experiment import run_io_experiment

        r = run_io_experiment(
            library, nprocs, perf_workload(), directions=(direction,)
        )[0]
        return r.perf_record()

    return job


# ---------------------------------------------------------------------------
# pmdk micros
# ---------------------------------------------------------------------------

def _pool_run(body) -> dict:
    """One-rank run over a fresh 16 MiB pool; ``body(ctx, pool)``."""
    from ..mem import PMEMDevice
    from ..pmdk import PmemPool, RawRegion
    from ..sim import run_spmd

    size = 16 * MiB
    device = PMEMDevice(size)
    region = RawRegion(device, 0, size)

    def fn(ctx):
        pool = PmemPool.create(ctx, region, size=size, nlanes=4)
        body(ctx, pool)

    return record_from_spmd(run_spmd(1, fn))


def _pmdk_alloc_churn() -> dict:
    def body(ctx, pool):
        live = []
        for i in range(300):
            live.append(pool.malloc(ctx, 64 + (i % 7) * 512))
            if len(live) > 40:
                pool.free(ctx, live.pop(0))
        for off in live:
            pool.free(ctx, off)

    return _pool_run(body)


def _pmdk_tx_commit() -> dict:
    def body(ctx, pool):
        from ..pmdk import Transaction

        off = pool.malloc(ctx, 4096)
        blob = np.arange(512, dtype=np.uint8)
        for _ in range(50):
            with Transaction(pool, ctx) as tx:
                tx.write(off, blob)

    return _pool_run(body)


# ---------------------------------------------------------------------------
# procs-engine wall-clock scenarios (threads/procs twin pair)
# ---------------------------------------------------------------------------
#
# Each twin pair runs the *same* fig6-style PMCPY-B write under each rank
# engine; modeled_ns must agree within the standard gate, while the wall
# columns expose the real-parallelism speedup the procs engine buys on a
# multi-core host (``python -m repro.perf speedup`` gates the ratio, and
# does its own core-count skip — the scenarios themselves run anywhere
# fork works, so single-core hosts still track the modeled columns).

_PROCS_NPROCS = 48
_PROCS_QUICK_NPROCS = 8


def _procs_skip() -> str | None:
    from ..sim.procengine import procs_available

    if not procs_available():
        return "procs engine unavailable on this platform (no os.fork)"
    return None


def _procs_fig_run(nprocs: int, engine: str) -> Callable[[], dict]:
    def job() -> dict:
        from ..harness.experiment import run_io_experiment

        r = run_io_experiment(
            "PMCPY-B", nprocs, perf_workload(),
            directions=("write",), engine=engine,
        )[0]
        return r.perf_record()

    return job


# ---------------------------------------------------------------------------
# partial-read scenarios (selections across every driver)
# ---------------------------------------------------------------------------
#
# One variable of the trimmed domain is written with 8 ranks, then every
# rank issues the same :class:`~repro.pmemcpy.selection.Selection` through
# ``driver.read_selection`` — the symmetric partial read-back.  The pMEMCPY
# series store the variable on an aligned 10^3 chunk grid, so their reads
# touch only intersecting chunks (and, for raw-serialized chunks, only the
# selected row segments); libraries without sub-block addressing pay the
# bounding-box staging cost instead.  Three access shapes are tracked:
#
# - ``1pct``   — a dense 9^3 corner block, ~1.1% of the 40^3 domain;
# - ``plane``  — a single k-plane (worst-case row fragmentation);
# - ``points`` — 64 scattered elements (bounding box ~ whole domain).

_PARTIAL_NPROCS = 8
_PARTIAL_CHUNK = (10, 10, 10)


def _partial_selection(kind: str):
    from ..pmemcpy.selection import Hyperslab, PointSelection

    n = PERF_AXIS_SCALE * 2  # the trimmed functional axis (40)
    if kind == "1pct":
        return Hyperslab((n // 2, n // 2, n // 2), (9, 9, 9))
    if kind == "plane":
        return Hyperslab((0, 0, n // 2), (n, n, 1))
    if kind == "points":
        return PointSelection(
            [((7 * i) % n, (11 * i) % n, (13 * i) % n) for i in range(64)]
        )
    raise ValueError(f"unknown partial kind {kind!r}")


def _partial_run(library: str, kind: str) -> Callable[[], dict]:
    def job() -> dict:
        from ..baselines import get_driver
        from ..cluster import Cluster
        from ..errors import BaselineError
        from ..harness.experiment import PAPER_LIBRARIES
        from ..mpi import Communicator
        from ..workloads import Domain3D, write_job

        workload = Domain3D(nvars=1, axis_scale=PERF_AXIS_SCALE)
        driver_name, driver_kw = PAPER_LIBRARIES[library]
        if driver_name == "pmemcpy":
            driver_kw = {**driver_kw, "chunk_shape": _PARTIAL_CHUNK}
        cl = Cluster(
            scale=workload.scale,
            pmem_capacity=max(64 * MiB, 8 * workload.functional_total_bytes),
        )
        path = "/pmem/perf_partial"
        cl.run(
            _PARTIAL_NPROCS,
            lambda ctx: write_job(ctx, workload, driver_name, path, driver_kw),
        )

        sel = _partial_selection(kind)
        name = workload.var_name(0)
        want = np.empty(sel.out_shape, workload.dtype)
        sel.scatter_into(
            want,
            workload.generate(0, (0, 0, 0), workload.functional_dims),
            (0, 0, 0),
        )

        def read_fn(ctx):
            comm = Communicator.world(ctx)
            d = get_driver(driver_name, **driver_kw)
            with ctx.phase("open"):
                d.open(ctx, comm, path, "r")
            with ctx.phase("read"):
                out = d.read_selection(ctx, name, sel)
            with ctx.phase("close"):
                d.close(ctx)
            if not np.array_equal(np.asarray(out), want):
                raise BaselineError(
                    f"{driver_name}: rank {comm.rank} read bad partial data"
                )

        return record_from_spmd(cl.run(_PARTIAL_NPROCS, read_fn))

    return job


# ---------------------------------------------------------------------------
# metadata-concurrency scenarios
# ---------------------------------------------------------------------------

_META_PROCS = 8
_META_ROUNDS = 6


def _meta_run(meta_stripes: int, meta_rw: bool) -> Callable[[], dict]:
    def job() -> dict:
        from .. import Cluster, Communicator, PMEM

        cl = Cluster(pmem_capacity=64 * MiB)

        def fn(ctx):
            comm = Communicator.world(ctx)
            pmem = PMEM(layout="hashtable", meta_stripes=meta_stripes,
                        meta_rw=meta_rw)
            pmem.mmap("/pmem/perf_meta", comm)
            # rank 0 creates every variable first, so the shared metadata
            # structures mutate in a fixed order — the parallel phase then
            # only updates rank-disjoint entries (determinism, see module
            # docstring)
            if ctx.rank == 0:
                for r in range(_META_PROCS):
                    pmem.store(f"r{r}", np.zeros(2048))
            comm.barrier()
            data = np.full(2048, float(ctx.rank))
            name = f"r{ctx.rank}"
            for _ in range(_META_ROUNDS):
                pmem.store(name, data)
                pmem.load(name)
            comm.barrier()
            pmem.munmap()

        return record_from_spmd(cl.run(_META_PROCS, fn))

    return job


# ---------------------------------------------------------------------------
# memcpy / persist hot path
# ---------------------------------------------------------------------------

def _mem_hot_path() -> dict:
    from .. import Cluster, Communicator, PMEM

    cl = Cluster(pmem_capacity=64 * MiB)

    def fn(ctx):
        comm = Communicator.world(ctx)
        pmem = PMEM(layout="hashtable", map_sync=True)
        pmem.mmap("/pmem/perf_mem", comm)
        data = np.arange(1 << 19, dtype=np.float64)  # 4 MiB
        for _ in range(4):
            pmem.store("hot", data)
        pmem.load("hot")
        pmem.munmap()

    return record_from_spmd(cl.run(1, fn))


# ---------------------------------------------------------------------------
# service RPC hot paths
# ---------------------------------------------------------------------------
#
# The service runs on its own modeled clock (wire cost model + engine
# batch makespans — repro.service.core docstring), so the whole RPC
# pipeline is deterministic and gates like any single-rank scenario.
# modeled_ns is the service-clock delta over a fixed request script;
# families fold the lifecycle spans (service.accept/decode/dispatch/
# engine/encode) together with the absorbed engine spans of the shard
# batches, so a regression in either layer moves the attribution.

def _service_record(core, t0: float) -> dict:
    from ..telemetry import exclusive_ns_by_family, metrics_for
    from ..telemetry.critpath import (
        critical_path_spans,
        critpath_summary,
        offer_capture,
    )
    from ..telemetry.export import registry_percentiles

    offer_capture("service", (core, t0))
    latency = {
        name[:-len(".ns")]: pct
        for name, pct in registry_percentiles(metrics_for(core.ctx)).items()
        if name.startswith("service.rpc.")
    }
    return {
        "modeled_ns": core.clock_ns - t0,
        "families": exclusive_ns_by_family([core.ctx.trace]),
        "latency": latency,
        "critpath": critpath_summary(
            critical_path_spans(core.ctx.trace.spans, t0, core.clock_ns)
        ),
    }


def _service_rpc_store() -> dict:
    from ..service import ServiceConfig, ServiceCore
    from ..service import wire as svc_wire

    core = ServiceCore(ServiceConfig(nshards=2))
    t0 = core.clock_ns
    data = np.arange(1 << 13, dtype=np.float64)  # 64 KiB values
    seq = 0
    for wave in range(2):  # second wave overwrites in place
        for k in range(16):
            seq += 1
            core.handle_payload(
                svc_wire.encode_store(seq, f"svc/v{k}",
                                      data * (wave + 1))[4:])
    return _service_record(core, t0)


def _service_rpc_load_partial() -> dict:
    from ..pmemcpy.selection import Hyperslab
    from ..service import ServiceConfig, ServiceCore
    from ..service import wire as svc_wire

    core = ServiceCore(ServiceConfig(nshards=2))
    grid = np.arange(96 * 96, dtype=np.float64).reshape(96, 96)
    t0 = core.clock_ns
    seq = 0
    for k in range(4):
        seq += 1
        core.handle_payload(
            svc_wire.encode_store(seq, f"svc/grid{k}", grid)[4:])
    slab = Hyperslab(start=(0, 0), count=(12, 12), stride=(8, 8))
    for rnd in range(8):
        for k in range(4):
            seq += 1
            core.handle_payload(svc_wire.encode_load(
                seq, f"svc/grid{k}",
                offsets=(rnd * 8, 16), dims=(24, 48))[4:])
            seq += 1
            core.handle_payload(svc_wire.encode_load(
                seq, f"svc/grid{k}", selection=slab)[4:])
    return _service_record(core, t0)


# ---------------------------------------------------------------------------
# registration
# ---------------------------------------------------------------------------

def _populate() -> None:
    from ..harness.experiment import PAPER_LIBRARIES

    for library in PAPER_LIBRARIES:
        for nprocs in FIG_PROCS:
            quick = nprocs in QUICK_FIG_PROCS
            # MAP_SYNC write makespans at high rank counts carry a few
            # percent of commit-attribution jitter (first-writer-wins on
            # shared metadata pages — kernel/dax.py docstring): widen the
            # gate for the PMCPY-B write cells beyond the 8p point
            tol = 0.06 if (library == "PMCPY-B" and nprocs > 8) else None
            _register(Scenario(
                f"fig6.{library}.{nprocs}p", "fig6", quick, False,
                _fig_run(library, nprocs, "write"),
                modeled_tolerance_frac=tol,
            ))
            _register(Scenario(
                f"fig7.{library}.{nprocs}p", "fig7", quick, False,
                _fig_run(library, nprocs, "read"),
            ))
    _register(Scenario("pmdk.alloc_churn", "pmdk", True, True,
                       _pmdk_alloc_churn))
    _register(Scenario("pmdk.tx_commit", "pmdk", True, True,
                       _pmdk_tx_commit))
    # lock-contention makespans jitter ~1% with replayed queueing order:
    # widen their gate to 3% (the selftest's synthetic slowdown is >100x)
    _register(Scenario("meta.lock_striped", "meta", True, False,
                       _meta_run(64, True), modeled_tolerance_frac=0.03))
    _register(Scenario("meta.lock_single", "meta", True, False,
                       _meta_run(1, False), modeled_tolerance_frac=0.03))
    _register(Scenario("mem.memcpy_persist", "mem", True, True,
                       _mem_hot_path))
    for nprocs in (_PROCS_QUICK_NPROCS, _PROCS_NPROCS):
        for eng in ("threads", "procs"):
            _register(Scenario(
                f"procs.fig6_write.{nprocs}p.{eng}", "procs",
                nprocs == _PROCS_QUICK_NPROCS, False,
                _procs_fig_run(nprocs, eng),
                # 48p twin carries the same commit-attribution jitter as
                # fig6.PMCPY-B.48p; the 8p pair agrees to ~0.03% and
                # keeps the global gate
                modeled_tolerance_frac=(
                    0.06 if nprocs == _PROCS_NPROCS else None
                ),
                engine=eng, skip=_procs_skip,
            ))
    for library in PAPER_LIBRARIES:
        for kind in ("1pct", "plane", "points"):
            _register(Scenario(
                f"partial.{kind}.{library}", "partial",
                kind == "1pct", False,
                _partial_run(library, kind),
            ))
    _register(Scenario("service.rpc_store", "service", True, True,
                       _service_rpc_store))
    _register(Scenario("service.rpc_load_partial", "service", True, True,
                       _service_rpc_load_partial))


_populate()
