"""Scenario measurement: exact modeled time + disciplined wall clock.

Each scenario is executed ``repeats`` times with the PR 4 overhead-gate
timing discipline — GC paused for the timed region (collected between
samples), ``REPRO_TRACE`` forced to ``full`` so the span families are
always recorded, and the whole scenario (functional pass + timing pass)
inside the timed window.  The **modeled** figures come from the first
execution and are exact/repeat-free; the **wall** figures keep every
sample so the comparison can derive noise-aware thresholds
(median + IQR, :mod:`repro.perf.compare`).
"""

from __future__ import annotations

import gc
import os
import statistics
import time
from dataclasses import dataclass, field

from ..telemetry.spans import TRACE_ENV
from .scenarios import Scenario

#: default wall repeats per scenario (full / --quick runs)
DEFAULT_REPEATS = 3
QUICK_REPEATS = 2


@dataclass
class WallStats:
    """Repeated wall-clock samples of one scenario, summarized."""

    samples: list[float] = field(default_factory=list)
    best_s: float = 0.0
    median_s: float = 0.0
    iqr_s: float = 0.0

    @classmethod
    def from_samples(cls, samples: list[float]) -> "WallStats":
        if not samples:
            return cls()
        med = statistics.median(samples)
        if len(samples) >= 2:
            q = statistics.quantiles(samples, n=4, method="inclusive")
            iqr = q[2] - q[0]
        else:
            iqr = 0.0
        return cls(
            samples=[round(s, 6) for s in samples],
            best_s=round(min(samples), 6),
            median_s=round(med, 6),
            iqr_s=round(iqr, 6),
        )

    def as_dict(self) -> dict:
        return {
            "samples": list(self.samples),
            "best_s": self.best_s,
            "median_s": self.median_s,
            "iqr_s": self.iqr_s,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "WallStats":
        return cls(
            samples=[float(s) for s in d.get("samples", [])],
            best_s=float(d.get("best_s", 0.0)),
            median_s=float(d.get("median_s", 0.0)),
            iqr_s=float(d.get("iqr_s", 0.0)),
        )


@dataclass
class Measurement:
    """One scenario's tracked figures (a ``runs[]`` record)."""

    scenario: str
    group: str
    deterministic: bool
    modeled_ns: float
    families: dict
    latency: dict
    wall: WallStats
    modeled_tolerance_frac: float | None = None
    engine: str = "threads"
    #: compact critical-path summary ({"total_ns", "families", "source"})
    #: from the scenario's causal replay; absent on legacy records
    critpath: dict | None = None

    def as_run(self) -> dict:
        out = {
            "scenario": self.scenario,
            "group": self.group,
            "deterministic": self.deterministic,
            "engine": self.engine,
            "modeled_ns": self.modeled_ns,
            "families": dict(self.families),
            "latency": dict(self.latency),
            "wall": self.wall.as_dict(),
        }
        if self.modeled_tolerance_frac is not None:
            out["modeled_tolerance_frac"] = self.modeled_tolerance_frac
        if self.critpath is not None:
            out["critpath"] = self.critpath
        return out

    @classmethod
    def from_run(cls, d: dict) -> "Measurement":
        tol = d.get("modeled_tolerance_frac")
        return cls(
            scenario=d["scenario"],
            group=d.get("group", ""),
            deterministic=bool(d.get("deterministic", False)),
            modeled_ns=float(d["modeled_ns"]),
            families={k: float(v) for k, v in d.get("families", {}).items()},
            latency=d.get("latency", {}),
            wall=WallStats.from_dict(d.get("wall", {})),
            modeled_tolerance_frac=float(tol) if tol is not None else None,
            engine=d.get("engine", "threads"),
            critpath=d.get("critpath"),
        )


def measure_scenario(scenario: Scenario,
                     repeats: int = DEFAULT_REPEATS) -> Measurement:
    """Run one scenario ``repeats`` times under the timing discipline."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    prev_trace = os.environ.get(TRACE_ENV)
    os.environ[TRACE_ENV] = "full"
    gc_was_enabled = gc.isenabled()
    gc.disable()
    record = None
    samples: list[float] = []
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            rec = scenario.run()
            samples.append(time.perf_counter() - t0)
            if record is None:
                record = rec
            gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()
        if prev_trace is None:
            os.environ.pop(TRACE_ENV, None)
        else:
            os.environ[TRACE_ENV] = prev_trace
    return Measurement(
        scenario=scenario.name,
        group=scenario.group,
        deterministic=scenario.deterministic,
        modeled_ns=float(record["modeled_ns"]),
        families={k: float(v) for k, v in record["families"].items()},
        latency=record.get("latency", {}),
        wall=WallStats.from_samples(samples),
        modeled_tolerance_frac=scenario.modeled_tolerance_frac,
        engine=getattr(scenario, "engine", "threads"),
        critpath=record.get("critpath"),
    )


def measure_all(scenarios, repeats: int = DEFAULT_REPEATS,
                progress=None, skip_log=print) -> list[Measurement]:
    out = []
    for s in scenarios:
        skip = getattr(s, "skip", None)
        reason = skip() if skip is not None else None
        if reason:
            skip_log(f"[perf] SKIP {s.name}: {reason}")
            continue
        m = measure_scenario(s, repeats)
        if progress is not None:
            progress(m)
        out.append(m)
    return out
