"""The committed perf baseline (``results/perf_baseline.json``).

The baseline is a snapshot of every scenario's tracked figures, written
by ``python -m repro.perf update-baseline`` and committed to the repo.
``compare`` gates the current run against it:

- **modeled_ns** is exact (deterministic simulator clock), so any drift
  is a real code change — the gate is a hard ±1%;
- **wall** figures are only comparable on the machine that produced them
  — the gate arms itself only when the env fingerprints match (or with
  ``--wall-gate on``), using median + IQR thresholds.

Update policy (DESIGN.md §10): refresh the baseline in the same PR as an
*intentional* perf change, with the compare report (which names the
responsible span families) quoted in the PR description.
"""

from __future__ import annotations

import json
import os

from ..telemetry.bench import bench_env
from .measure import Measurement

BASELINE_SCHEMA = "repro-perf-baseline/3"
#: schema /1 predates the rank-engine column; /2 predates the per-scenario
#: critical-path summary.  Loaded baselines are shimmed in memory: /1
#: gains ``engine: "threads"``, and both simply lack ``critpath`` entries
#: (the compare gate skips the critical-path diff for those scenarios).
_BASELINE_SCHEMA_V1 = "repro-perf-baseline/1"
_BASELINE_SCHEMA_V2 = "repro-perf-baseline/2"
DEFAULT_BASELINE_PATH = os.path.join("results", "perf_baseline.json")


def baseline_from_runs(runs: list[dict], env: dict | None = None) -> dict:
    """Assemble a baseline document from ``runs[]`` records."""
    scenarios = {}
    for r in runs:
        m = Measurement.from_run(r)
        entry = {
            "group": m.group,
            "deterministic": m.deterministic,
            "engine": m.engine,
            "modeled_ns": m.modeled_ns,
            "families": dict(m.families),
            "latency": dict(m.latency),
            "wall": m.wall.as_dict(),
        }
        if m.modeled_tolerance_frac is not None:
            entry["modeled_tolerance_frac"] = m.modeled_tolerance_frac
        if m.critpath is not None:
            entry["critpath"] = m.critpath
        scenarios[m.scenario] = entry
    return {
        "schema": BASELINE_SCHEMA,
        "env": env if env is not None else bench_env(),
        "scenarios": scenarios,
    }


def save_baseline(path: str, doc: dict) -> str:
    if doc.get("schema") != BASELINE_SCHEMA or "scenarios" not in doc:
        raise ValueError("not a perf baseline document")
    d = os.path.dirname(path)
    if d:
        os.makedirs(d, exist_ok=True)
    with open(path, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write("\n")
    return path


def load_baseline(path: str) -> dict:
    if not os.path.exists(path):
        raise FileNotFoundError(
            f"no perf baseline at {path} — generate one with "
            f"`python -m repro.perf update-baseline`"
        )
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") == _BASELINE_SCHEMA_V1:
        doc = migrate_v1(doc)
    if doc.get("schema") == _BASELINE_SCHEMA_V2:
        doc = migrate_v2(doc)
    if doc.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: schema {doc.get('schema')!r} is not {BASELINE_SCHEMA!r}"
        )
    if not isinstance(doc.get("scenarios"), dict) or not doc["scenarios"]:
        raise ValueError(f"{path}: baseline has no scenarios")
    return doc


def migrate_v1(doc: dict) -> dict:
    """Shim a schema /1 baseline up to current: stamp the engine column.

    Every /1 baseline was measured before the procs engine existed, so
    each scenario entry gains ``engine: "threads"`` (and, like /2, simply
    has no critpath entries)."""
    out = dict(doc)
    out["schema"] = BASELINE_SCHEMA
    out["scenarios"] = {
        name: {**entry, "engine": entry.get("engine", "threads")}
        for name, entry in doc.get("scenarios", {}).items()
    }
    return out


def migrate_v2(doc: dict) -> dict:
    """Shim a schema /2 baseline up to /3.

    /3 only *adds* the optional per-scenario ``critpath`` summary, so the
    migration is a schema restamp; scenarios without critpath entries are
    legal (the compare gate skips the critical-path diff for them)."""
    out = dict(doc)
    out["schema"] = BASELINE_SCHEMA
    return out
