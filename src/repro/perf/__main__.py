"""CLI: the performance-regression observatory.

Usage::

    # measure the scenario suite -> BENCH_PERF.json (unified bench schema)
    python -m repro.perf run [--quick] [--scenario NAME ...] [--repeats N]

    # gate BENCH_PERF.json against the committed baseline; on failure the
    # report ranks the span families responsible for the slowdown
    python -m repro.perf compare [--bench BENCH_PERF.json]
        [--baseline results/perf_baseline.json] [--wall-gate auto|on|off]
        [--report FILE] [--json FILE]

    # snapshot the current BENCH file (or a fresh run) as the baseline
    python -m repro.perf update-baseline [--bench BENCH_PERF.json]

    # human report with per-scenario history sparklines
    python -m repro.perf report [--history 'BENCH_PERF*.json' ...]

    # prove the gate works: inflate LOCK_OVERHEAD_NS and require compare
    # to fail with meta.lock as the top attributed family
    python -m repro.perf selftest
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from ..telemetry.bench import bench_doc, load_bench, write_bench
from ..telemetry.counters import _fmt_quantity
from .baseline import (
    DEFAULT_BASELINE_PATH,
    baseline_from_runs,
    load_baseline,
    save_baseline,
)
from .compare import compare_runs
from .measure import DEFAULT_REPEATS, QUICK_REPEATS, Measurement, measure_all
from .report import load_history, render_perf_report
from .scenarios import get, select

DEFAULT_BENCH_PATH = "BENCH_PERF.json"
BENCH_NAME = "perf_scenarios"


def _measure(args) -> list[dict]:
    scenarios = select(quick=args.quick, names=args.scenario or None,
                       groups=getattr(args, "group", None) or None)
    repeats = args.repeats or (QUICK_REPEATS if args.quick
                               else DEFAULT_REPEATS)

    def progress(m):
        print(f"[perf] {m.scenario:<24} "
              f"modeled {_fmt_quantity(m.modeled_ns, 'ns'):<18} "
              f"wall median {m.wall.median_s:.3f}s "
              f"(best {m.wall.best_s:.3f}s, n={len(m.wall.samples)})")

    return [m.as_run() for m in measure_all(scenarios, repeats, progress)]


def cmd_run(args) -> int:
    runs = _measure(args)
    doc = bench_doc(BENCH_NAME, runs, quick=bool(args.quick))
    write_bench(args.out, doc)
    print(f"[bench] {args.out}  ({len(runs)} scenarios)")
    return 0


def cmd_compare(args) -> int:
    doc = load_bench(args.bench)
    try:
        baseline = load_baseline(args.baseline)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rep = compare_runs(
        baseline, doc.get("runs", []),
        modeled_gate=args.modeled_gate,
        wall_gate=args.wall_gate,
        cur_env=doc.get("env"),
    )
    text = rep.render()
    print(text)
    if args.report:
        d = os.path.dirname(args.report)
        if d:
            os.makedirs(d, exist_ok=True)
        with open(args.report, "w") as f:
            f.write(text + "\n")
        print(f"[report] {args.report}")
    if args.json:
        with open(args.json, "w") as f:
            json.dump(rep.as_dict(), f, indent=1)
            f.write("\n")
        print(f"[json] {args.json}")
    return 0 if rep.ok else 1


def cmd_update_baseline(args) -> int:
    if os.path.exists(args.bench) and not args.fresh:
        doc = load_bench(args.bench)
        runs = doc.get("runs", [])
        env = doc.get("env")
        print(f"[baseline] snapshotting {args.bench} ({len(runs)} scenarios)")
    else:
        print("[baseline] measuring a fresh run "
              f"({'quick' if args.quick else 'full'} budget)")
        runs = _measure(args)
        env = None
    path = save_baseline(args.baseline, baseline_from_runs(runs, env))
    print(f"[baseline] {path}")
    return 0


def cmd_report(args) -> int:
    doc = load_bench(args.bench)
    baseline = None
    if os.path.exists(args.baseline):
        baseline = load_baseline(args.baseline)
    history = load_history(args.history or [])
    print(render_perf_report(doc, baseline, history))
    return 0


def cmd_selftest(args) -> int:
    """The gate's own gate: a synthetic slowdown must (a) trip the modeled
    gate and (b) be attributed to ``meta.lock``."""
    from ..pmdk import hashmap as _hashmap
    from ..pmdk import locks as _locks
    from .measure import measure_scenario

    names = ("meta.lock_single", "meta.lock_striped")
    scenarios = [get(n) for n in names]
    print(f"[selftest] baseline pass over {', '.join(names)}")
    base_runs = [measure_scenario(s, repeats=1).as_run() for s in scenarios]
    baseline = baseline_from_runs(base_runs)

    factor = args.factor
    old = _locks.LOCK_OVERHEAD_NS
    print(f"[selftest] inflating LOCK_OVERHEAD_NS {old:g} -> "
          f"{old * factor:g} ns and re-measuring")
    _locks.LOCK_OVERHEAD_NS = old * factor
    _hashmap.LOCK_OVERHEAD_NS = old * factor
    try:
        cur_runs = [measure_scenario(s, repeats=1).as_run()
                    for s in scenarios]
    finally:
        _locks.LOCK_OVERHEAD_NS = old
        _hashmap.LOCK_OVERHEAD_NS = old

    rep = compare_runs(baseline, cur_runs, wall_gate="off")
    print(rep.render())
    if rep.ok:
        print("error: inflated lock overhead did not trip the modeled gate",
              file=sys.stderr)
        return 1
    top = rep.top_family()
    if top != "meta.lock":
        print(f"error: expected meta.lock as top attributed family, "
              f"got {top!r}", file=sys.stderr)
        return 1
    print("[selftest] regression detected and attributed to meta.lock ✓")
    return 0


def cmd_speedup(args) -> int:
    """Gate the procs-vs-threads wall ratio of the ``procs.*`` twin pairs.

    Small hosts can't demonstrate real parallelism, so the gate skips
    (exit 0, explicit log line) below ``--min-cores``."""
    ncpu = os.cpu_count() or 1
    if ncpu < args.min_cores:
        print(f"[speedup] SKIP: host has {ncpu} core(s); the "
              f"procs-vs-threads wall comparison needs >= {args.min_cores} "
              f"(--min-cores)")
        return 0
    doc = load_bench(args.bench)
    pairs: dict[str, dict[str, Measurement]] = {}
    for r in doc.get("runs", []):
        m = Measurement.from_run(r)
        if not m.scenario.startswith("procs."):
            continue
        stem, _, eng = m.scenario.rpartition(".")
        if eng in ("threads", "procs"):
            pairs.setdefault(stem, {})[eng] = m
    checked = 0
    ok = True
    for stem in sorted(pairs):
        pair = pairs[stem]
        if "threads" not in pair or "procs" not in pair:
            print(f"[speedup] {stem}: incomplete twin pair "
                  f"({', '.join(sorted(pair))} only) — skipping")
            continue
        t = pair["threads"].wall.median_s
        p = pair["procs"].wall.median_s
        if p <= 0:
            print(f"[speedup] {stem}: procs wall median is 0 — skipping")
            continue
        ratio = t / p
        checked += 1
        good = ratio >= args.expect
        ok = ok and good
        print(f"[speedup] {stem}: threads {t:.3f}s / procs {p:.3f}s "
              f"= {ratio:.2f}x "
              f"({'ok' if good else f'below the {args.expect:g}x gate'})")
    if checked == 0:
        print(f"[speedup] SKIP: no complete procs.* twin pairs in "
              f"{args.bench} — run `python -m repro.perf run --group procs` "
              f"on a multi-core host first")
        return 0
    return 0 if ok else 1


def _add_measure_args(p, *, out: bool) -> None:
    p.add_argument("--quick", action="store_true",
                   help="small CI budget: quick scenarios, fewer repeats")
    p.add_argument("--scenario", action="append", metavar="NAME",
                   help="measure only NAME (repeatable)")
    p.add_argument("--group", action="append", metavar="GROUP",
                   help="measure only scenarios in GROUP (repeatable)")
    p.add_argument("--repeats", type=int, default=None,
                   help="wall samples per scenario")
    if out:
        p.add_argument("--out", default=DEFAULT_BENCH_PATH)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="repro.perf", description=__doc__)
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="measure scenarios -> BENCH_PERF.json")
    _add_measure_args(p, out=True)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("compare", help="gate a BENCH file vs the baseline")
    p.add_argument("--bench", default=DEFAULT_BENCH_PATH)
    p.add_argument("--baseline", default=DEFAULT_BASELINE_PATH)
    p.add_argument("--modeled-gate", type=float, default=0.01,
                   help="modeled-ns regression gate fraction")
    p.add_argument("--wall-gate", choices=("auto", "on", "off"),
                   default="auto")
    p.add_argument("--report", default=None, metavar="FILE",
                   help="also write the rendered report to FILE")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="write the machine-readable verdicts to FILE")
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("update-baseline",
                       help="snapshot a BENCH file (or fresh run) as baseline")
    p.add_argument("--bench", default=DEFAULT_BENCH_PATH)
    p.add_argument("--baseline", default=DEFAULT_BASELINE_PATH)
    p.add_argument("--fresh", action="store_true",
                   help="ignore an existing BENCH file; re-measure")
    _add_measure_args(p, out=False)
    p.set_defaults(fn=cmd_update_baseline)

    p = sub.add_parser("report", help="history sparklines + attribution")
    p.add_argument("--bench", default=DEFAULT_BENCH_PATH)
    p.add_argument("--baseline", default=DEFAULT_BASELINE_PATH)
    p.add_argument("--history", action="append", metavar="GLOB",
                   help="prior BENCH files (glob, repeatable)")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("speedup",
                       help="gate procs-vs-threads wall ratio (procs.* pairs)")
    p.add_argument("--bench", default=DEFAULT_BENCH_PATH)
    p.add_argument("--min-cores", type=int, default=2,
                   help="skip (exit 0) on hosts with fewer cores")
    p.add_argument("--expect", type=float, default=4.0,
                   help="minimum threads/procs wall ratio")
    p.set_defaults(fn=cmd_speedup)

    p = sub.add_parser("selftest",
                       help="synthetic slowdown must fail with meta.lock top")
    p.add_argument("--factor", type=float, default=400.0,
                   help="LOCK_OVERHEAD_NS inflation factor")
    p.set_defaults(fn=cmd_selftest)

    args = ap.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
