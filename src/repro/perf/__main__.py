"""CLI: the performance-regression observatory.

Usage::

    # measure the scenario suite -> BENCH_PERF.json (unified bench schema)
    python -m repro.perf run [--quick] [--scenario NAME ...] [--repeats N]

    # gate BENCH_PERF.json against the committed baseline; on failure the
    # report ranks the span families responsible for the slowdown
    python -m repro.perf compare [--bench BENCH_PERF.json]
        [--baseline results/perf_baseline.json] [--wall-gate auto|on|off]
        [--report FILE] [--json FILE]

    # snapshot the current BENCH file (or a fresh run) as the baseline
    python -m repro.perf update-baseline [--bench BENCH_PERF.json]

    # human report with per-scenario history sparklines
    python -m repro.perf report [--history 'BENCH_PERF*.json' ...]

    # prove the gate works: inflate LOCK_OVERHEAD_NS and require compare
    # to fail with meta.lock as the top attributed family
    python -m repro.perf selftest

    # causal analysis of one scenario: critical path by span family,
    # lock hand-offs, per-stripe contention, what-if estimates
    python -m repro.perf doctor SCENARIO [--json FILE] [--flame-out FILE]

    # the doctor's own gate: byte-stable output, shares summing to 100%
    # on both engines, and a 400x lock inflation correctly blamed
    python -m repro.perf doctor --selftest
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from ..telemetry.bench import bench_doc, load_bench, write_bench
from ..telemetry.counters import _fmt_quantity
from .baseline import (
    DEFAULT_BASELINE_PATH,
    baseline_from_runs,
    load_baseline,
    save_baseline,
)
from .compare import compare_runs
from .measure import DEFAULT_REPEATS, QUICK_REPEATS, Measurement, measure_all
from .report import load_history, render_perf_report
from .scenarios import get, select

DEFAULT_BENCH_PATH = "BENCH_PERF.json"
BENCH_NAME = "perf_scenarios"


def _measure(args) -> list[dict]:
    scenarios = select(quick=args.quick, names=args.scenario or None,
                       groups=getattr(args, "group", None) or None)
    repeats = args.repeats or (QUICK_REPEATS if args.quick
                               else DEFAULT_REPEATS)

    def progress(m):
        print(f"[perf] {m.scenario:<24} "
              f"modeled {_fmt_quantity(m.modeled_ns, 'ns'):<18} "
              f"wall median {m.wall.median_s:.3f}s "
              f"(best {m.wall.best_s:.3f}s, n={len(m.wall.samples)})")

    return [m.as_run() for m in measure_all(scenarios, repeats, progress)]


def cmd_run(args) -> int:
    runs = _measure(args)
    doc = bench_doc(BENCH_NAME, runs, quick=bool(args.quick))
    write_bench(args.out, doc)
    print(f"[bench] {args.out}  ({len(runs)} scenarios)")
    return 0


def cmd_compare(args) -> int:
    doc = load_bench(args.bench)
    try:
        baseline = load_baseline(args.baseline)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rep = compare_runs(
        baseline, doc.get("runs", []),
        modeled_gate=args.modeled_gate,
        wall_gate=args.wall_gate,
        cur_env=doc.get("env"),
    )
    text = rep.render()
    print(text)
    if args.report:
        d = os.path.dirname(args.report)
        if d:
            os.makedirs(d, exist_ok=True)
        with open(args.report, "w") as f:
            f.write(text + "\n")
        print(f"[report] {args.report}")
    if args.json:
        with open(args.json, "w") as f:
            json.dump(rep.as_dict(), f, indent=1)
            f.write("\n")
        print(f"[json] {args.json}")
    if not rep.ok:
        # automatic root-causing: diff baseline-vs-current critical paths
        # and leave the narrative where both humans and CI will see it
        narrative = rep.doctor_narrative()
        if narrative:
            doc["doctor"] = {
                "narrative": narrative,
                "top_critpath_family": rep.top_critpath_family(),
                "culprits": {
                    v.scenario: v.critpath_culprits
                    for v in rep.regressions if v.critpath_culprits
                },
            }
            write_bench(args.bench, doc)
            print(f"[doctor] root-cause narrative written into {args.bench}")
        step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
        if step_summary:
            with open(step_summary, "a") as f:
                f.write("## perf doctor — regression root cause\n\n```\n")
                f.write(narrative or
                        "no critical-path evidence recorded for the "
                        "failing scenarios")
                f.write("\n```\n")
    return 0 if rep.ok else 1


def cmd_update_baseline(args) -> int:
    if os.path.exists(args.bench) and not args.fresh:
        doc = load_bench(args.bench)
        runs = doc.get("runs", [])
        env = doc.get("env")
        print(f"[baseline] snapshotting {args.bench} ({len(runs)} scenarios)")
    else:
        print("[baseline] measuring a fresh run "
              f"({'quick' if args.quick else 'full'} budget)")
        runs = _measure(args)
        env = None
    path = save_baseline(args.baseline, baseline_from_runs(runs, env))
    print(f"[baseline] {path}")
    return 0


def cmd_report(args) -> int:
    doc = load_bench(args.bench)
    baseline = None
    if os.path.exists(args.baseline):
        baseline = load_baseline(args.baseline)
    history = load_history(args.history or [])
    print(render_perf_report(doc, baseline, history))
    return 0


def cmd_selftest(args) -> int:
    """The gate's own gate: a synthetic slowdown must (a) trip the modeled
    gate and (b) be attributed to ``meta.lock``."""
    from ..pmdk import hashmap as _hashmap
    from ..pmdk import locks as _locks
    from .measure import measure_scenario

    names = ("meta.lock_single", "meta.lock_striped")
    scenarios = [get(n) for n in names]
    print(f"[selftest] baseline pass over {', '.join(names)}")
    base_runs = [measure_scenario(s, repeats=1).as_run() for s in scenarios]
    baseline = baseline_from_runs(base_runs)

    factor = args.factor
    old = _locks.LOCK_OVERHEAD_NS
    print(f"[selftest] inflating LOCK_OVERHEAD_NS {old:g} -> "
          f"{old * factor:g} ns and re-measuring")
    _locks.LOCK_OVERHEAD_NS = old * factor
    _hashmap.LOCK_OVERHEAD_NS = old * factor
    try:
        cur_runs = [measure_scenario(s, repeats=1).as_run()
                    for s in scenarios]
    finally:
        _locks.LOCK_OVERHEAD_NS = old
        _hashmap.LOCK_OVERHEAD_NS = old

    rep = compare_runs(baseline, cur_runs, wall_gate="off")
    print(rep.render())
    if rep.ok:
        print("error: inflated lock overhead did not trip the modeled gate",
              file=sys.stderr)
        return 1
    top = rep.top_family()
    if top != "meta.lock":
        print(f"error: expected meta.lock as top attributed family, "
              f"got {top!r}", file=sys.stderr)
        return 1
    print("[selftest] regression detected and attributed to meta.lock ✓")
    return 0


def _analyze_scenario(name: str) -> tuple[dict, dict, object]:
    """Run one scenario under full tracing with the doctor's capture hook
    armed; returns ``(critpath_doc, perf_record, spmd_result_or_None)``."""
    from ..telemetry.critpath import (
        capture_analysis,
        critical_path_spans,
        critical_path_spmd,
        critpath_doc,
        whatif_report,
    )
    from ..telemetry.spans import TRACE_ENV

    sc = get(name)
    skip = getattr(sc, "skip", None)
    reason = skip() if skip is not None else None
    if reason:
        raise RuntimeError(f"scenario {name}: {reason}")
    prev_trace = os.environ.get(TRACE_ENV)
    os.environ[TRACE_ENV] = "full"
    try:
        with capture_analysis() as captured:
            rec = sc.run()
    finally:
        if prev_trace is None:
            os.environ.pop(TRACE_ENV, None)
        else:
            os.environ[TRACE_ENV] = prev_trace
    spmd = [p for kind, p in captured if kind == "spmd"]
    service = [p for kind, p in captured if kind == "service"]
    if spmd:
        res = spmd[-1]
        cp = critical_path_spmd(res)
        wi = whatif_report(res.traces, cp.total_ns, machine=res.machine)
        return critpath_doc(cp, whatif=wi, scenario=name), rec, res
    if service:
        core, t0 = service[-1]
        cp = critical_path_spans(core.ctx.trace.spans, t0, core.clock_ns)
        return critpath_doc(cp, scenario=name), rec, None
    raise RuntimeError(
        f"scenario {name} offered no analyzable run to the doctor"
    )


def _render_doctor(doc: dict) -> str:
    lines = [f"== perf doctor: {doc.get('scenario', '?')} =="]
    lines.append(
        f"  critical path {_fmt_quantity(doc['total_ns'], 'ns')} "
        f"(source: {doc['source']})"
    )
    fams = doc.get("families", {})
    if fams:
        lines.append("  critical-path share by span family:")
        ranked = sorted(fams.items(), key=lambda kv: (-kv[1]["ns"], kv[0]))
        for fam, row in ranked[:12]:
            lines.append(
                f"    {fam:<22} {_fmt_quantity(row['ns'], 'ns'):<16} "
                f"{row['share'] * 100:6.2f}%"
            )
        if len(ranked) > 12:
            lines.append(f"    ... and {len(ranked) - 12} smaller families")
    handoffs = doc.get("handoffs", {})
    if handoffs:
        lines.append("  waits jumped on the path (blame stays with the "
                     "holder's work):")
        for fam, h in sorted(handoffs.items(),
                             key=lambda kv: -kv[1]["wait_ns"]):
            lines.append(
                f"    {fam:<22} {h['count']:>4} hand-offs, "
                f"{_fmt_quantity(h['wait_ns'], 'ns')} waited"
            )
    contention = doc.get("contention", {})
    if contention:
        lines.append("  lock contention (wait-for graph):")
        ranked = sorted(contention.items(),
                        key=lambda kv: (-kv[1]["wait_ns"], kv[0]))
        for lock_id, st in ranked[:8]:
            lines.append(
                f"    {lock_id:<28} {st['acquires']:>5} acq "
                f"({st['contended']} contended, queue<={st['max_queue']})  "
                f"wait {_fmt_quantity(st['wait_ns'], 'ns')}  "
                f"hold mean {_fmt_quantity(st['mean_hold_ns'], 'ns')}"
            )
        if len(ranked) > 8:
            lines.append(f"    ... and {len(ranked) - 8} quieter locks")
    whatif = doc.get("whatif")
    if whatif:
        lines.append("  what-if (replayed counterfactuals, ranked by "
                     "time saved):")
        for row in whatif:
            lines.append(
                f"    {row['name']:<12} -> "
                f"{_fmt_quantity(row['modeled_ns'], 'ns'):<16} "
                f"saves {_fmt_quantity(row['delta_ns'], 'ns'):<16} "
                f"({row['speedup']:.2f}x)"
            )
    return "\n".join(lines)


def cmd_doctor(args) -> int:
    from ..telemetry.critpath import critpath_dumps, validate_critpath

    if args.selftest:
        return _doctor_selftest(args)
    if not args.scenario_name:
        print("error: doctor needs a scenario name (or --selftest)",
              file=sys.stderr)
        return 2
    doc, _rec, res = _analyze_scenario(args.scenario_name)
    errs = validate_critpath(doc)
    if errs:
        print(f"error: doctor produced an invalid critpath doc: {errs[:3]}",
              file=sys.stderr)
        return 1
    print(_render_doctor(doc))
    if args.json:
        d = os.path.dirname(args.json)
        if d:
            os.makedirs(d, exist_ok=True)
        with open(args.json, "w") as f:
            f.write(critpath_dumps(doc))
            f.write("\n")
        print(f"[json] {args.json}")
    if args.flame_out:
        from ..telemetry.flame import write_folded

        if res is None:
            print("[flame] scenario has no replayable span forest; "
                  "skipping --flame-out")
        else:
            d = os.path.dirname(args.flame_out)
            if d:
                os.makedirs(d, exist_ok=True)
            write_folded(args.flame_out, res.traces)
            print(f"[flame] {args.flame_out} (fold with speedscope or "
                  f"flamegraph.pl)")
    return 0


def _doctor_selftest(args) -> int:
    """The doctor's own gate (CI: ``perf doctor --selftest``):

    1. byte-identical critpath JSON across two runs of a deterministic
       scenario;
    2. per-family critical-path shares summing to 100% ± 0.1% of the
       end-to-end modeled time, on both rank engines;
    3. a ``--factor``x LOCK_OVERHEAD_NS inflation blamed on ``meta.lock``
       as the top critical-path delta;
    4. a baseline-vs-self diff reporting exactly zero culprits.
    """
    from ..pmdk import hashmap as _hashmap
    from ..pmdk import locks as _locks
    from ..telemetry.critpath import (
        critpath_culprits,
        critpath_dumps,
        validate_critpath,
    )

    failures: list[str] = []

    print("[doctor-selftest] 1/4 byte-stable output (mem.memcpy_persist)")
    doc_a = _analyze_scenario("mem.memcpy_persist")[0]
    doc_b = _analyze_scenario("mem.memcpy_persist")[0]
    if critpath_dumps(doc_a) != critpath_dumps(doc_b):
        failures.append("critpath JSON differs between two identical runs")

    print("[doctor-selftest] 2/4 shares sum to 100% of modeled time")
    names = ["mem.memcpy_persist", "meta.lock_single",
             "service.rpc_store", "procs.fig6_write.8p.threads"]
    procs_twin = get("procs.fig6_write.8p.procs")
    if procs_twin.skip is None or procs_twin.skip() is None:
        names.append(procs_twin.name)
    else:
        print(f"[doctor-selftest]   SKIP {procs_twin.name}: "
              f"{procs_twin.skip()}")
    baseline_docs: dict[str, dict] = {}
    for name in names:
        doc, rec, _res = _analyze_scenario(name)
        baseline_docs[name] = doc
        errs = validate_critpath(doc)
        if errs:
            failures.append(f"{name}: invalid critpath doc: {errs[:2]}")
            continue
        share_sum = sum(r["share"] for r in doc["families"].values())
        ns_sum = sum(r["ns"] for r in doc["families"].values())
        modeled = float(rec["modeled_ns"])
        if abs(share_sum - 1.0) > 1e-3:
            failures.append(f"{name}: shares sum to {share_sum:.6f}")
        if modeled > 0 and abs(ns_sum - modeled) > 1e-3 * modeled:
            failures.append(
                f"{name}: path families sum to {ns_sum:.0f} ns but "
                f"end-to-end modeled time is {modeled:.0f} ns"
            )
        print(f"[doctor-selftest]   {name:<28} "
              f"{share_sum * 100:7.3f}% of "
              f"{_fmt_quantity(modeled, 'ns')}")

    print(f"[doctor-selftest] 3/4 {args.factor:g}x lock inflation must "
          f"blame meta.lock")
    base_doc = baseline_docs["meta.lock_single"]
    old = _locks.LOCK_OVERHEAD_NS
    _locks.LOCK_OVERHEAD_NS = old * args.factor
    _hashmap.LOCK_OVERHEAD_NS = old * args.factor
    try:
        slow_doc = _analyze_scenario("meta.lock_single")[0]
    finally:
        _locks.LOCK_OVERHEAD_NS = old
        _hashmap.LOCK_OVERHEAD_NS = old
    culprits = critpath_culprits(base_doc, slow_doc)
    top = culprits[0]["family"] if culprits else None
    if top != "meta.lock":
        failures.append(
            f"inflated run's top critical-path delta is {top!r}, "
            f"expected 'meta.lock' "
            f"(culprits: {[c['family'] for c in culprits[:3]]})"
        )
    else:
        print(f"[doctor-selftest]   meta.lock "
              f"+{_fmt_quantity(culprits[0]['delta_ns'], 'ns')} "
              f"on the critical path ✓")

    print("[doctor-selftest] 4/4 baseline-vs-self diff must be empty")
    self_culprits = critpath_culprits(base_doc, base_doc)
    if self_culprits:
        failures.append(
            f"self-diff produced culprits: "
            f"{[c['family'] for c in self_culprits]}"
        )

    if failures:
        for f in failures:
            print(f"error: {f}", file=sys.stderr)
        return 1
    print("[doctor-selftest] all checks passed ✓")
    return 0


def cmd_speedup(args) -> int:
    """Gate the procs-vs-threads wall ratio of the ``procs.*`` twin pairs.

    Small hosts can't demonstrate real parallelism, so the gate skips
    (exit 0, explicit log line) below ``--min-cores``."""
    ncpu = os.cpu_count() or 1
    if ncpu < args.min_cores:
        print(f"[speedup] SKIP: host has {ncpu} core(s); the "
              f"procs-vs-threads wall comparison needs >= {args.min_cores} "
              f"(--min-cores)")
        return 0
    doc = load_bench(args.bench)
    pairs: dict[str, dict[str, Measurement]] = {}
    for r in doc.get("runs", []):
        m = Measurement.from_run(r)
        if not m.scenario.startswith("procs."):
            continue
        stem, _, eng = m.scenario.rpartition(".")
        if eng in ("threads", "procs"):
            pairs.setdefault(stem, {})[eng] = m
    checked = 0
    ok = True
    for stem in sorted(pairs):
        pair = pairs[stem]
        if "threads" not in pair or "procs" not in pair:
            print(f"[speedup] {stem}: incomplete twin pair "
                  f"({', '.join(sorted(pair))} only) — skipping")
            continue
        t = pair["threads"].wall.median_s
        p = pair["procs"].wall.median_s
        if p <= 0:
            print(f"[speedup] {stem}: procs wall median is 0 — skipping")
            continue
        ratio = t / p
        checked += 1
        good = ratio >= args.expect
        ok = ok and good
        print(f"[speedup] {stem}: threads {t:.3f}s / procs {p:.3f}s "
              f"= {ratio:.2f}x "
              f"({'ok' if good else f'below the {args.expect:g}x gate'})")
    if checked == 0:
        print(f"[speedup] SKIP: no complete procs.* twin pairs in "
              f"{args.bench} — run `python -m repro.perf run --group procs` "
              f"on a multi-core host first")
        return 0
    return 0 if ok else 1


def _add_measure_args(p, *, out: bool) -> None:
    p.add_argument("--quick", action="store_true",
                   help="small CI budget: quick scenarios, fewer repeats")
    p.add_argument("--scenario", action="append", metavar="NAME",
                   help="measure only NAME (repeatable)")
    p.add_argument("--group", action="append", metavar="GROUP",
                   help="measure only scenarios in GROUP (repeatable)")
    p.add_argument("--repeats", type=int, default=None,
                   help="wall samples per scenario")
    if out:
        p.add_argument("--out", default=DEFAULT_BENCH_PATH)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="repro.perf", description=__doc__)
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="measure scenarios -> BENCH_PERF.json")
    _add_measure_args(p, out=True)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("compare", help="gate a BENCH file vs the baseline")
    p.add_argument("--bench", default=DEFAULT_BENCH_PATH)
    p.add_argument("--baseline", default=DEFAULT_BASELINE_PATH)
    p.add_argument("--modeled-gate", type=float, default=0.01,
                   help="modeled-ns regression gate fraction")
    p.add_argument("--wall-gate", choices=("auto", "on", "off"),
                   default="auto")
    p.add_argument("--report", default=None, metavar="FILE",
                   help="also write the rendered report to FILE")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="write the machine-readable verdicts to FILE")
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("update-baseline",
                       help="snapshot a BENCH file (or fresh run) as baseline")
    p.add_argument("--bench", default=DEFAULT_BENCH_PATH)
    p.add_argument("--baseline", default=DEFAULT_BASELINE_PATH)
    p.add_argument("--fresh", action="store_true",
                   help="ignore an existing BENCH file; re-measure")
    _add_measure_args(p, out=False)
    p.set_defaults(fn=cmd_update_baseline)

    p = sub.add_parser("report", help="history sparklines + attribution")
    p.add_argument("--bench", default=DEFAULT_BENCH_PATH)
    p.add_argument("--baseline", default=DEFAULT_BASELINE_PATH)
    p.add_argument("--history", action="append", metavar="GLOB",
                   help="prior BENCH files (glob, repeatable)")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("speedup",
                       help="gate procs-vs-threads wall ratio (procs.* pairs)")
    p.add_argument("--bench", default=DEFAULT_BENCH_PATH)
    p.add_argument("--min-cores", type=int, default=2,
                   help="skip (exit 0) on hosts with fewer cores")
    p.add_argument("--expect", type=float, default=4.0,
                   help="minimum threads/procs wall ratio")
    p.set_defaults(fn=cmd_speedup)

    p = sub.add_parser("selftest",
                       help="synthetic slowdown must fail with meta.lock top")
    p.add_argument("--factor", type=float, default=400.0,
                   help="LOCK_OVERHEAD_NS inflation factor")
    p.set_defaults(fn=cmd_selftest)

    p = sub.add_parser("doctor",
                       help="causal analysis: critical path, contention, "
                            "what-ifs")
    p.add_argument("scenario_name", nargs="?", metavar="SCENARIO",
                   help="registered perf scenario to analyze")
    p.add_argument("--selftest", action="store_true",
                   help="run the doctor's own correctness gate instead")
    p.add_argument("--factor", type=float, default=400.0,
                   help="LOCK_OVERHEAD_NS inflation factor (--selftest)")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="write the repro-critpath/1 document to FILE")
    p.add_argument("--flame-out", default=None, metavar="FILE",
                   help="write folded flamegraph stacks to FILE")
    p.set_defaults(fn=cmd_doctor)

    args = ap.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
