"""The performance-regression observatory (``python -m repro.perf``).

Turns the repo's one-shot benchmarks into a tracked, gated time series:

- :mod:`.scenarios` — declarative registry of perf scenarios (fig6/fig7
  per driver × proc count, pmdk micros, metadata-lock contention, the
  memcpy/persist hot path), each yielding exact modeled-ns plus span
  families;
- :mod:`.measure` — the timing discipline (GC paused, repeated wall
  samples, ``REPRO_TRACE=full``);
- :mod:`.baseline` — the committed ``results/perf_baseline.json``
  snapshot;
- :mod:`.compare` — noise-aware gating (modeled ±1% hard, wall
  median+IQR, env-fingerprinted) with **span-diff attribution**: a
  failing gate ranks the span families (``meta.lock``,
  ``store.persist``, ``pmdk.tx``, ...) responsible for the slowdown;
- :mod:`.report` — history sparklines over prior ``BENCH_PERF.json``
  artifacts.

See DESIGN.md §10 for the measurement rules and baseline update policy.
"""

from __future__ import annotations

from .baseline import (
    DEFAULT_BASELINE_PATH,
    baseline_from_runs,
    load_baseline,
    save_baseline,
)
from .compare import (
    MODELED_GATE_FRAC,
    CompareReport,
    FamilyDelta,
    ScenarioVerdict,
    attribute_families,
    compare_runs,
)
from .measure import Measurement, WallStats, measure_all, measure_scenario
from .report import load_history, render_perf_report, sparkline
from .scenarios import Scenario, all_scenarios, get, select

__all__ = [
    "Scenario", "all_scenarios", "get", "select",
    "Measurement", "WallStats", "measure_scenario", "measure_all",
    "baseline_from_runs", "save_baseline", "load_baseline",
    "DEFAULT_BASELINE_PATH",
    "compare_runs", "attribute_families", "CompareReport",
    "ScenarioVerdict", "FamilyDelta", "MODELED_GATE_FRAC",
    "load_history", "render_perf_report", "sparkline",
]
