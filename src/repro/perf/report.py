"""The human perf report: per-scenario history sparklines + attribution.

``python -m repro.perf report`` renders the current ``BENCH_PERF.json``
with, per scenario:

- a sparkline of modeled time across prior BENCH files (the bench
  trajectory, oldest → newest, current run appended);
- the baseline delta, when a baseline is supplied;
- the top span families by exclusive time with their latency
  percentiles (:meth:`Histogram.percentiles` via the recorded
  ``latency`` block).
"""

from __future__ import annotations

import glob as _glob

from ..telemetry.bench import load_bench
from ..telemetry.counters import _fmt_quantity
from .measure import Measurement

SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float]) -> str:
    """Unicode sparkline, scaled to the series' own min..max."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        return SPARK[0] * len(vals)
    steps = len(SPARK) - 1
    return "".join(
        SPARK[round((v - lo) / (hi - lo) * steps)] for v in vals
    )


def load_history(patterns) -> dict[str, list[float]]:
    """``{scenario: [modeled_ns, ...]}`` from prior BENCH files.

    ``patterns`` is a list of paths or globs; files are read in sorted
    path order (name your snapshots so that sorts chronologically).
    Non-perf bench files (e.g. ``BENCH_telemetry.json``) are skipped."""
    paths: list[str] = []
    for p in patterns:
        hits = sorted(_glob.glob(p))
        paths.extend(hits if hits else [])
    out: dict[str, list[float]] = {}
    for path in paths:
        try:
            doc = load_bench(path)
        except (OSError, ValueError):
            continue
        if doc.get("bench") != "perf_scenarios":
            continue
        for r in doc.get("runs", []):
            name = r.get("scenario")
            if name and "modeled_ns" in r:
                out.setdefault(name, []).append(float(r["modeled_ns"]))
    return out


def render_perf_report(
    doc: dict,
    baseline_doc: dict | None = None,
    history: dict[str, list[float]] | None = None,
    title: str = "perf observatory",
) -> str:
    history = history or {}
    base_scenarios = (baseline_doc or {}).get("scenarios", {})
    lines = [f"== {title} =="]
    runs = doc.get("runs", [])
    if not runs:
        lines.append("  (no scenarios measured)")
        return "\n".join(lines)
    width = max(len(r.get("scenario", "?")) for r in runs)
    for r in runs:
        m = Measurement.from_run(r)
        series = history.get(m.scenario, []) + [m.modeled_ns]
        spark = sparkline(series[-16:])
        base = base_scenarios.get(m.scenario)
        if base and float(base.get("modeled_ns", 0.0)):
            delta = (m.modeled_ns - float(base["modeled_ns"])) \
                / float(base["modeled_ns"])
            vs = f"{delta * 100:+6.2f}% vs baseline"
        else:
            vs = "   (no baseline)"
        lines.append(
            f"  {m.scenario:<{width}}  "
            f"modeled {_fmt_quantity(m.modeled_ns, 'ns'):<18} "
            f"wall {m.wall.median_s:7.3f}s  {vs}  {spark}"
        )
        top = sorted(m.families.items(), key=lambda kv: -kv[1])[:3]
        total = sum(m.families.values()) or 1.0
        for fam, ns in top:
            pct = m.latency.get(fam)
            pct_s = ""
            if pct:
                pct_s = ("  p50=" + _fmt_quantity(pct.get("p50", 0.0), "ns")
                         + " p95=" + _fmt_quantity(pct.get("p95", 0.0), "ns")
                         + " p99=" + _fmt_quantity(pct.get("p99", 0.0), "ns"))
            lines.append(
                f"      {fam:<18} {_fmt_quantity(ns, 'ns'):<16} "
                f"({100.0 * ns / total:5.1f}% excl){pct_s}"
            )
    return "\n".join(lines)
