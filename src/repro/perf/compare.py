"""Noise-aware regression gating with span-diff attribution.

Two gates per scenario, tuned to each clock's noise model:

- **modeled gate** — the simulator clock is deterministic, so the delta
  between baseline and current ``modeled_ns`` is exact; anything beyond
  ±:data:`MODELED_GATE_FRAC` (1%) is a real change.  Slowdowns fail;
  speedups are reported as ``improved`` (refresh the baseline).
- **wall gate** — wall samples are noisy; the threshold is
  ``baseline.median + max(k * baseline.IQR, rel_floor * baseline.median,
  abs_floor)`` (Tukey-style with floors sized for 2-3 samples), and the
  gate only *arms* when the env fingerprints match (``auto``) or is
  forced with ``on``.  Otherwise wall drift is reported but advisory.

The observability heart is :func:`attribute_families`: the per-family
exclusive-time maps of baseline and current run are merged and ranked by
delta, so a failing gate names the guilty subsystem (``meta.lock``,
``store.persist``, ``pmdk.tx``, ...) rather than just the scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..telemetry.bench import env_fingerprint
from ..telemetry.counters import _fmt_quantity
from .measure import Measurement

MODELED_GATE_FRAC = 0.01
WALL_IQR_K = 1.5
#: floors under which wall drift is never gate-worthy — with 2-3 samples
#: the IQR degenerates toward 0, and sub-second scenarios jitter 10-25%
#: under background load; the relative + absolute floors absorb both
#: while a genuine ~2x slowdown still trips the gate
WALL_FLOOR_FRAC = 0.25
WALL_ABS_FLOOR_S = 0.05

#: verdict statuses that fail the gate
FAILING = ("modeled-regression", "wall-regression", "engine-mismatch")


@dataclass
class FamilyDelta:
    """One span family's contribution to a scenario's slowdown."""

    family: str
    base_ns: float
    cur_ns: float
    delta_ns: float
    share: float  # of the total positive family delta

    def as_dict(self) -> dict:
        return {
            "family": self.family,
            "base_ns": self.base_ns,
            "cur_ns": self.cur_ns,
            "delta_ns": self.delta_ns,
            "share": round(self.share, 4),
        }


def attribute_families(base: dict, cur: dict,
                       top: int | None = None) -> list[FamilyDelta]:
    """Merge two per-family exclusive-time maps and rank by delta.

    Families are sorted by absolute regression (largest added exclusive
    time first); ``share`` is each family's fraction of the *total
    positive* delta, so shares of the slowed-down families sum to 1."""
    fams = sorted(set(base) | set(cur))
    gained = sum(max(cur.get(f, 0.0) - base.get(f, 0.0), 0.0) for f in fams)
    out = [
        FamilyDelta(
            family=f,
            base_ns=base.get(f, 0.0),
            cur_ns=cur.get(f, 0.0),
            delta_ns=cur.get(f, 0.0) - base.get(f, 0.0),
            share=(max(cur.get(f, 0.0) - base.get(f, 0.0), 0.0) / gained
                   if gained > 0 else 0.0),
        )
        for f in fams
    ]
    out.sort(key=lambda d: (-d.delta_ns, d.family))
    return out[:top] if top else out


@dataclass
class ScenarioVerdict:
    scenario: str
    # ok | improved | modeled-regression | wall-regression | engine-mismatch
    # | new
    status: str
    base_engine: str = "threads"
    cur_engine: str = "threads"
    base_modeled_ns: float = 0.0
    cur_modeled_ns: float = 0.0
    modeled_delta_frac: float = 0.0
    wall_base_median_s: float = 0.0
    wall_cur_median_s: float = 0.0
    wall_threshold_s: float = 0.0
    wall_exceeded: bool = False
    attribution: list[FamilyDelta] = field(default_factory=list)
    #: per-family critical-path deltas (repro.telemetry.critpath rows) for
    #: failed scenarios where both sides recorded a critpath summary
    critpath_culprits: list[dict] = field(default_factory=list)
    #: one-sentence root-cause narrative derived from the culprits
    narrative: str = ""

    @property
    def failed(self) -> bool:
        return self.status in FAILING

    def as_dict(self) -> dict:
        d = {
            "scenario": self.scenario,
            "status": self.status,
            "base_engine": self.base_engine,
            "cur_engine": self.cur_engine,
            "base_modeled_ns": self.base_modeled_ns,
            "cur_modeled_ns": self.cur_modeled_ns,
            "modeled_delta_frac": round(self.modeled_delta_frac, 6),
            "wall_base_median_s": self.wall_base_median_s,
            "wall_cur_median_s": self.wall_cur_median_s,
            "wall_threshold_s": self.wall_threshold_s,
            "wall_exceeded": self.wall_exceeded,
        }
        if self.attribution:
            d["attribution"] = [a.as_dict() for a in self.attribution]
        if self.critpath_culprits:
            d["critpath_culprits"] = list(self.critpath_culprits)
        if self.narrative:
            d["narrative"] = self.narrative
        return d


@dataclass
class CompareReport:
    verdicts: list[ScenarioVerdict]
    wall_gated: bool
    modeled_gate_frac: float
    missing: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(v.failed for v in self.verdicts)

    @property
    def regressions(self) -> list[ScenarioVerdict]:
        return [v for v in self.verdicts if v.failed]

    def top_family(self) -> str | None:
        """The family accounting for the most added exclusive time across
        every failing scenario — the report's one-line culprit."""
        totals: dict[str, float] = {}
        for v in self.regressions:
            for a in v.attribution:
                if a.delta_ns > 0:
                    totals[a.family] = totals.get(a.family, 0.0) + a.delta_ns
        if not totals:
            return None
        return max(sorted(totals), key=lambda f: totals[f])

    def top_critpath_family(self) -> str | None:
        """The family with the most *critical-path* time added across the
        failing scenarios — the doctor's culprit (may disagree with
        :meth:`top_family` when the slowdown is off the path)."""
        totals: dict[str, float] = {}
        for v in self.regressions:
            for c in v.critpath_culprits:
                totals[c["family"]] = (
                    totals.get(c["family"], 0.0) + c["delta_ns"]
                )
        if not totals:
            return None
        return max(sorted(totals), key=lambda f: totals[f])

    def doctor_narrative(self) -> str:
        """Root-cause paragraph covering every failed scenario (empty when
        the gate passed or no critpath evidence exists)."""
        lines = [v.narrative for v in self.regressions if v.narrative]
        top = self.top_critpath_family()
        if top and lines:
            lines.append(f"Overall critical-path culprit: {top}.")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "wall_gated": self.wall_gated,
            "modeled_gate_frac": self.modeled_gate_frac,
            "top_family": self.top_family(),
            "top_critpath_family": self.top_critpath_family(),
            "doctor_narrative": self.doctor_narrative(),
            "missing_from_run": list(self.missing),
            "scenarios": [v.as_dict() for v in self.verdicts],
        }

    def render(self) -> str:
        lines = ["== perf comparison =="]
        lines.append(
            f"  modeled gate ±{self.modeled_gate_frac * 100:.1f}% (exact)  |  "
            f"wall gate {'armed' if self.wall_gated else 'advisory (env differs or off)'}"
        )
        for v in self.verdicts:
            mark = {"ok": " ", "improved": "+", "new": "?"}.get(v.status, "!")
            lines.append(
                f"  [{mark}] {v.scenario:<24} {v.status:<19} "
                f"modeled {_fmt_quantity(v.cur_modeled_ns, 'ns'):<18} "
                f"({v.modeled_delta_frac * +100:+.2f}% vs baseline)  "
                f"wall {v.wall_cur_median_s:.3f}s"
            )
            if v.status == "engine-mismatch":
                lines.append(
                    f"      baseline engine {v.base_engine!r} vs run engine "
                    f"{v.cur_engine!r} — re-measure or refresh the baseline "
                    f"under the matching engine"
                )
            if v.failed and v.attribution:
                lines.append("      slowdown attribution "
                             "(exclusive-time delta by span family):")
                for a in v.attribution[:5]:
                    if a.delta_ns <= 0:
                        continue
                    lines.append(
                        f"        {a.family:<18} "
                        f"+{_fmt_quantity(a.delta_ns, 'ns'):<16} "
                        f"({a.share * 100:5.1f}% of the regression)"
                    )
            if v.failed and v.critpath_culprits:
                lines.append("      critical-path diff "
                             "(path time added by span family):")
                for c in v.critpath_culprits[:5]:
                    lines.append(
                        f"        {c['family']:<18} "
                        f"+{_fmt_quantity(c['delta_ns'], 'ns'):<16} "
                        f"({_fmt_quantity(c['base_ns'], 'ns')} -> "
                        f"{_fmt_quantity(c['cur_ns'], 'ns')})"
                    )
            if v.failed and v.narrative:
                lines.append(f"      ROOT CAUSE: {v.narrative}")
        if self.missing:
            lines.append(
                f"  (not measured this run: {', '.join(self.missing)})"
            )
        top = self.top_family()
        if top:
            lines.append(f"  TOP ATTRIBUTED FAMILY: {top}")
        lines.append("  RESULT: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def compare_runs(
    baseline_doc: dict,
    runs: list[dict],
    *,
    modeled_gate: float = MODELED_GATE_FRAC,
    wall_gate: str = "auto",          # auto | on | off
    iqr_k: float = WALL_IQR_K,
    cur_env: dict | None = None,
) -> CompareReport:
    """Gate ``runs[]`` records against a committed baseline document."""
    if wall_gate not in ("auto", "on", "off"):
        raise ValueError(f"wall_gate must be auto|on|off, got {wall_gate!r}")
    base_scenarios = baseline_doc.get("scenarios", {})
    envs_match = (
        env_fingerprint(baseline_doc.get("env"))
        == env_fingerprint(cur_env)
    )
    gated = wall_gate == "on" or (wall_gate == "auto" and envs_match)

    verdicts: list[ScenarioVerdict] = []
    seen: set[str] = set()
    for r in runs:
        m = Measurement.from_run(r)
        seen.add(m.scenario)
        base = base_scenarios.get(m.scenario)
        if base is None:
            verdicts.append(ScenarioVerdict(
                m.scenario, "new", cur_engine=m.engine,
                cur_modeled_ns=m.modeled_ns,
                wall_cur_median_s=m.wall.median_s,
            ))
            continue
        base_engine = str(base.get("engine", "threads"))
        if m.engine != base_engine:
            # apples-to-oranges: a run measured under one rank engine must
            # never silently pass (or fail) against the other engine's
            # figures — the baseline needs a refresh instead
            verdicts.append(ScenarioVerdict(
                m.scenario, "engine-mismatch",
                base_engine=base_engine, cur_engine=m.engine,
                base_modeled_ns=float(base["modeled_ns"]),
                cur_modeled_ns=m.modeled_ns,
                wall_base_median_s=float(
                    base.get("wall", {}).get("median_s", 0.0)),
                wall_cur_median_s=m.wall.median_s,
            ))
            continue
        base_ns = float(base["modeled_ns"])
        delta_frac = (m.modeled_ns - base_ns) / base_ns if base_ns else 0.0
        # jittery scenarios (replayed lock-queueing order) widen their own
        # gate; declared in the scenario registry and snapshotted in both
        # the baseline and the run record — take whichever is recorded
        tol = max(
            float(base.get("modeled_tolerance_frac") or 0.0),
            float(m.modeled_tolerance_frac or 0.0),
        )
        gate_frac = max(modeled_gate, tol)

        base_wall = base.get("wall", {})
        wall_median = float(base_wall.get("median_s", 0.0))
        wall_iqr = float(base_wall.get("iqr_s", 0.0))
        threshold = wall_median + max(
            iqr_k * wall_iqr, WALL_FLOOR_FRAC * wall_median, WALL_ABS_FLOOR_S
        )
        wall_exceeded = bool(wall_median) and m.wall.median_s > threshold

        if delta_frac > gate_frac:
            status = "modeled-regression"
        elif gated and wall_exceeded:
            status = "wall-regression"
        elif delta_frac < -gate_frac:
            status = "improved"
        else:
            status = "ok"
        attribution = attribute_families(
            base.get("families", {}), m.families
        ) if status != "ok" else []
        culprits: list[dict] = []
        narrative = ""
        if status in FAILING and base.get("critpath") and m.critpath:
            from ..telemetry.critpath import (
                critpath_culprits,
                narrate_culprits,
            )

            culprits = critpath_culprits(base["critpath"], m.critpath)
            narrative = narrate_culprits(
                m.scenario, culprits,
                total_delta_ns=m.modeled_ns - base_ns,
            )
        verdicts.append(ScenarioVerdict(
            m.scenario, status,
            base_engine=base_engine, cur_engine=m.engine,
            base_modeled_ns=base_ns,
            cur_modeled_ns=m.modeled_ns,
            modeled_delta_frac=delta_frac,
            wall_base_median_s=wall_median,
            wall_cur_median_s=m.wall.median_s,
            wall_threshold_s=round(threshold, 6),
            wall_exceeded=wall_exceeded,
            attribution=attribution,
            critpath_culprits=culprits,
            narrative=narrative,
        ))
    missing = sorted(set(base_scenarios) - seen)
    return CompareReport(
        verdicts=verdicts,
        wall_gated=gated,
        modeled_gate_frac=modeled_gate,
        missing=missing,
    )
