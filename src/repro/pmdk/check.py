"""Pool consistency checker — the ``pmempool check`` analog.

Validates, directly against the on-device bytes:

1. superblock: magic, version, checksum, size/offset arithmetic;
2. heap: block headers/footers tile the heap exactly, boundary tags agree,
   no two adjacent free blocks (coalescing invariant);
3. lanes: every undo-log entry lies inside the pool and inside its lane;
4. hashtable (when the pool root points at one): header sanity, chains
   acyclic, every entry and value blob inside the heap, stored hashes match
   the keys, count field equals the number of reachable entries.  Both root
   formats are autodetected: the legacy 16-byte ``hdr|mutex`` root and the
   striped 24-byte ``hdr|stripes|nstripes`` root;
5. variable metadata: every ``<id>#dims`` value must unpack as a
   :class:`~repro.pmemcpy.dataset.VariableMeta` whose ``next_index`` is at
   least the number of published chunks (reserve bumps the index *before*
   publish, so a persisted record can never trail its own chunk list);
6. lock owner words (``live_ranks`` given): a nonzero owner word whose
   rank is not live is a *stale owner* — a dead holder that recovery must
   clear.  Checked over the striped metadata table and any extra
   ``lock_offsets`` the caller knows about.

Returns a :class:`CheckReport`; ``ok`` is True when no problems were found.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field

from .alloc import (
    BLOCK_MAGIC,
    FOOTER_SIZE,
    HEADER_SIZE,
    STATUS_FREE,
    STATUS_USED,
    _FTR,
    _HDR,
)
from .hashmap import ENTRY_FIXED, _ENTRY, fnv1a64
from .pool import PmemPool


@dataclass
class CheckReport:
    problems: list[str] = field(default_factory=list)
    n_blocks: int = 0
    n_free: int = 0
    n_used: int = 0
    free_bytes: int = 0
    used_bytes: int = 0
    active_lanes: int = 0
    map_entries: int = 0
    stripes: int = 0
    variables: int = 0

    @property
    def ok(self) -> bool:
        return not self.problems

    def add(self, msg: str) -> None:
        self.problems.append(msg)

    def render(self) -> str:
        lines = [
            "== pmempool check ==",
            f"blocks: {self.n_blocks} ({self.n_used} used / {self.n_free} free)",
            f"bytes:  {self.used_bytes} used / {self.free_bytes} free",
            f"lanes with pending undo logs: {self.active_lanes}",
            f"hashtable entries: {self.map_entries}",
            f"lock stripes: {self.stripes}, variables: {self.variables}",
        ]
        if self.ok:
            lines.append("consistent ✓")
        else:
            lines.append(f"{len(self.problems)} problem(s):")
            lines.extend(f"  - {p}" for p in self.problems)
        return "\n".join(lines)


def live_ranks_from_pids(pids) -> set[int]:
    """Map procs-engine worker pids to the set of still-live ranks.

    ``pids`` is rank-indexed (``SpmdResult.worker_pids`` or
    ``RankFailedError.worker_pids``).  Liveness is a signal-0 probe: a
    pid that no longer exists is a dead worker, so any nonzero owner
    word naming its rank is stale — feed the result straight into
    ``check_pool(live_ranks=...)``.  A zero/missing pid counts as dead;
    ``PermissionError`` means the pid exists (just not ours to signal),
    which still counts as live.
    """
    live: set[int] = set()
    for rank, pid in enumerate(pids):
        if not pid:
            continue
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            continue
        except PermissionError:
            pass
        live.add(rank)
    return live


def check_pool(
    ctx,
    pool: PmemPool,
    *,
    check_map: bool = True,
    live_ranks=None,
    lock_offsets=(),
) -> CheckReport:
    """Run all checks against ``pool``'s persistent image.

    ``live_ranks`` (a set of rank ids, or None to skip) arms the stale
    owner-word check: any nonzero lock word naming a rank outside the set
    is reported.  ``lock_offsets`` adds standalone mutex/rwlock words
    beyond those the pool root reveals.
    """
    report = CheckReport()
    _check_heap(ctx, pool, report)
    _check_lanes(ctx, pool, report)
    if check_map and pool.root():
        _check_root(ctx, pool, report, live_ranks)
    if live_ranks is not None:
        _check_owner_words(
            ctx, pool, report, live_ranks,
            [("lock", off) for off in lock_offsets],
        )
    return report


def _check_heap(ctx, pool: PmemPool, report: CheckReport) -> None:
    pos = pool.heap_off
    heap_end = pool.heap_off + pool.heap_size // 64 * 64
    prev_free = False
    guard = 0
    while pos < heap_end:
        guard += 1
        if guard > 10_000_000:
            report.add("heap walk did not terminate")
            return
        raw = bytes(pool.read(ctx, pos, HEADER_SIZE))
        size, status, magic, _pad = _HDR.unpack(raw)
        if magic != BLOCK_MAGIC:
            report.add(f"block at {pos}: bad magic {magic:#x}")
            return
        if size < 64 or size % 64 or pos + size > heap_end:
            report.add(f"block at {pos}: bad size {size}")
            return
        if status not in (STATUS_FREE, STATUS_USED):
            report.add(f"block at {pos}: bad status {status:#x}")
            return
        ftr = bytes(pool.read(ctx, pos + size - FOOTER_SIZE, FOOTER_SIZE))
        (fsize,) = _FTR.unpack(ftr)
        if fsize != size:
            report.add(
                f"block at {pos}: footer says {fsize}, header says {size}"
            )
        free = status == STATUS_FREE
        if free and prev_free:
            report.add(f"blocks at <{pos} and {pos}: uncoalesced free pair")
        report.n_blocks += 1
        if free:
            report.n_free += 1
            report.free_bytes += size
        else:
            report.n_used += 1
            report.used_bytes += size
        prev_free = free
        pos += size
    if pos != heap_end:
        report.add(f"heap ends at {pos}, expected {heap_end}")


def _check_lanes(ctx, pool: PmemPool, report: CheckReport) -> None:
    for lane in range(pool.nlanes):
        base = pool.lane_offset(lane)
        count = pool.read_u64(ctx, base)
        if count == 0:
            continue
        report.active_lanes += 1
        pos = base + 8
        lane_end = base + pool.lane_log_size
        for i in range(count):
            if pos + 16 > lane_end:
                report.add(f"lane {lane}: entry {i} header beyond lane")
                break
            off = pool.read_u64(ctx, pos)
            length = pool.read_u64(ctx, pos + 8)
            if pos + 16 + length > lane_end:
                report.add(f"lane {lane}: entry {i} body beyond lane")
                break
            if off + length > pool.size:
                report.add(f"lane {lane}: entry {i} targets beyond pool")
            pos += 16 + length


def _used_spans(ctx, pool: PmemPool) -> list[tuple[int, int]]:
    """(user_off, usable) for every used block, by header walk."""
    spans = []
    pos = pool.heap_off
    heap_end = pool.heap_off + pool.heap_size // 64 * 64
    while pos < heap_end:
        raw = bytes(pool.read(ctx, pos, HEADER_SIZE))
        size, status, magic, _pad = _HDR.unpack(raw)
        if magic != BLOCK_MAGIC or size < 64 or pos + size > heap_end:
            return spans  # heap check already reported this
        if status == STATUS_USED:
            spans.append((pos + HEADER_SIZE, size - HEADER_SIZE - FOOTER_SIZE))
        pos += size
    return spans


def _check_root(ctx, pool: PmemPool, report: CheckReport, live_ranks) -> None:
    """Autodetect the root format, then check the namespace behind it.

    pMEMCPY pools have rooted two shapes over time: the legacy 16-byte
    ``hashmap header off | mutex off`` pair, and the striped 24-byte
    ``hashmap header off | stripe table off | nstripes`` triple.  A root
    is treated as striped only when the stripe fields decode to a
    plausible heap-resident table; anything else falls back to legacy.
    """
    root = pool.root()
    spans = {off: size for off, size in _used_spans(ctx, pool)}

    def inside_used(off: int, size: int) -> bool:
        for base, usable in spans.items():
            if base <= off and off + size <= base + usable:
                return True
        return False

    try:
        raw = bytes(pool.read(ctx, root, 24))
        hdr_off, stripes_off, nstripes = struct.unpack("<QQQ", raw)
    except Exception:
        try:
            raw = bytes(pool.read(ctx, root, 16))
            hdr_off, _mutex_off = struct.unpack("<QQ", raw)
            stripes_off = nstripes = 0
        except Exception:
            report.add(f"root object at {root} unreadable")
            return
    striped = (
        stripes_off != 0
        and 1 <= nstripes <= 1 << 16
        and inside_used(stripes_off, 8 * nstripes)
        and inside_used(hdr_off, 24)
    )
    if striped:
        report.stripes = int(nstripes)
        if live_ranks is not None:
            _check_owner_words(
                ctx, pool, report, live_ranks,
                [(f"stripe {i}", stripes_off + 8 * i)
                 for i in range(int(nstripes))],
            )
    _check_hashmap(ctx, pool, report, hdr_off, inside_used)


def _check_owner_words(
    ctx, pool: PmemPool, report: CheckReport, live_ranks, words,
) -> None:
    """Flag nonzero owner words (``rank + 1``) naming non-live ranks."""
    for label, off in words:
        if off + 8 > pool.size:
            report.add(f"{label}: owner word at {off} beyond pool")
            continue
        word = pool.read_u64(ctx, off)
        if word and (word - 1) not in live_ranks:
            report.add(
                f"{label}: stale owner word at {off} — "
                f"rank {word - 1} holds the lock but is not live"
            )


def _check_hashmap(ctx, pool: PmemPool, report: CheckReport,
                   hdr_off: int, inside_used) -> None:
    try:
        nb, count, buckets_off = struct.unpack(
            "<QQQ", bytes(pool.read(ctx, hdr_off, 24))
        )
    except Exception:
        report.add(f"hashtable header at {hdr_off} unreadable")
        return
    if nb == 0 or nb > 1 << 32:
        report.add(f"hashtable: implausible bucket count {nb}")
        return
    if not inside_used(buckets_off, nb * 8):
        report.add("hashtable: bucket array not inside a used block")
        return
    seen: set[int] = set()
    reachable = 0
    dims_values: list[tuple[bytes, bytes]] = []
    for b in range(int(nb)):
        entry = pool.read_u64(ctx, buckets_off + 8 * b)
        while entry:
            if entry in seen:
                report.add(f"hashtable: cycle via entry {entry}")
                return
            seen.add(entry)
            if not inside_used(entry, ENTRY_FIXED):
                report.add(f"hashtable: entry {entry} not in a used block")
                return
            raw = bytes(pool.read(ctx, entry, ENTRY_FIXED))
            nxt, h, key_len, _pad, val_off, val_len = _ENTRY.unpack(raw)
            key = bytes(pool.read(ctx, entry + ENTRY_FIXED, key_len))
            if fnv1a64(key) != h:
                report.add(f"hashtable: entry {entry} hash mismatch for {key!r}")
            if h % nb != b:
                report.add(f"hashtable: entry {entry} in wrong bucket {b}")
            if val_len and not inside_used(val_off, val_len):
                report.add(
                    f"hashtable: value of {key!r} not inside a used block"
                )
            elif key.endswith(b"#dims"):
                dims_values.append(
                    (key, bytes(pool.read(ctx, val_off, val_len)))
                )
            reachable += 1
            entry = nxt
    report.map_entries = reachable
    if reachable != count:
        report.add(
            f"hashtable: header count {count} != reachable entries {reachable}"
        )
    _check_variables(report, dims_values)


def _check_variables(report: CheckReport, dims_values) -> None:
    """Every reachable ``<id>#dims`` value must be a well-formed variable
    record, and its ``next_index`` must cover every published chunk: the
    store protocol bumps the index under the reserve lock *before* any
    chunk is appended, so ``next_index < len(chunks)`` can only mean a
    lost or reordered metadata persist."""
    # function-local: pmemcpy sits above pmdk in the layer stack
    from ..pmemcpy.dataset import VariableMeta

    for key, raw in dims_values:
        name = key[: -len(b"#dims")].decode(errors="replace")
        try:
            meta = VariableMeta.unpack(name, raw)
        except Exception as e:
            report.add(f"variable {name!r}: meta does not unpack ({e})")
            continue
        report.variables += 1
        if meta.next_index < len(meta.chunks):
            report.add(
                f"variable {name!r}: next_index {meta.next_index} behind "
                f"{len(meta.chunks)} published chunk(s)"
            )
