"""Persistent hashtable with chaining — pMEMCPY's flat namespace (§3).

On-device layout::

    header (24B):  nbuckets u64 | count u64 | buckets_off u64
    buckets:       nbuckets × u64 entry offsets (0 = empty chain)
    entry:         next u64 | hash u64 | key_len u32 | pad u32
                   val_off u64 | val_len u64 | key bytes...

Values are separately-allocated blobs so rehashing never moves user data.
All structural mutations run inside undo-log transactions; obsolete blobs
are freed via ``on_commit`` so an abort (or crash) never leaves dangling
pointers — a crash between commit and the deferred free can only leak,
never corrupt (PMDK accepts the same window for its non-transactional
atomic frees).
"""

from __future__ import annotations

import struct

from ..errors import PmdkError
from ..shm.sync import CoreLock
from .locks import LOCK_OVERHEAD_NS, fnv1a64
from .tx import Transaction

__all__ = ["PmemHashmap", "fnv1a64"]

HEADER_SIZE = 24
ENTRY_FIXED = 40
_ENTRY = struct.Struct("<QQIIQQ")
DEFAULT_NBUCKETS = 64
MAX_LOAD_FACTOR = 4.0
GROWTH = 4


class PmemHashmap:
    """Handle to a hashtable rooted at ``hdr_off`` inside ``pool``."""

    def __init__(self, pool, hdr_off: int):
        self.pool = pool
        self.hdr_off = hdr_off
        # arbitration comes from the pool's lock provider, keyed by the
        # table's offset: in-process under threads, cross-process when the
        # pool is attached to a shared domain — the charged map-lock delay
        # and every chain read are identical either way
        self._lock = CoreLock(
            pool.locks.mutex_core(("hashmap", hdr_off), reentrant=True)
        )

    # ------------------------------------------------------------------ lifecycle

    @classmethod
    def create(cls, ctx, pool, *, nbuckets: int = DEFAULT_NBUCKETS) -> "PmemHashmap":
        if nbuckets < 1:
            raise PmdkError("nbuckets must be >= 1")
        hdr_off = pool.malloc(ctx, HEADER_SIZE)
        buckets_off = pool.malloc(ctx, nbuckets * 8)
        pool.write(ctx, buckets_off, bytes(nbuckets * 8))
        pool.persist(ctx, buckets_off, nbuckets * 8)
        pool.write(ctx, hdr_off, struct.pack("<QQQ", nbuckets, 0, buckets_off))
        pool.persist(ctx, hdr_off, HEADER_SIZE)
        return cls(pool, hdr_off)

    @classmethod
    def open(cls, pool, hdr_off: int) -> "PmemHashmap":
        return cls(pool, hdr_off)

    # ------------------------------------------------------------------ header access

    def _header(self, ctx) -> tuple[int, int, int]:
        raw = bytes(self.pool.read(ctx, self.hdr_off, HEADER_SIZE))
        return struct.unpack("<QQQ", raw)

    def __len__(self) -> int:
        raise TypeError("use count(ctx) — reading the header costs time")

    def count(self, ctx) -> int:
        return self._header(ctx)[1]

    def nbuckets(self, ctx) -> int:
        return self._header(ctx)[0]

    # ------------------------------------------------------------------ entries

    def _read_entry(self, ctx, off: int) -> tuple[int, int, int, int, int, bytes]:
        raw = bytes(self.pool.read(ctx, off, ENTRY_FIXED))
        nxt, h, key_len, _pad, val_off, val_len = _ENTRY.unpack(raw)
        key = bytes(self.pool.read(ctx, off + ENTRY_FIXED, key_len))
        return nxt, h, key_len, val_off, val_len, key

    def _find(self, ctx, key: bytes) -> tuple[int, int, int, dict]:
        """Walk the chain.  Returns (bucket_ptr_off, prev_ptr_off, entry_off,
        entry_fields); entry_off == 0 if absent.  ``prev_ptr_off`` is the
        device offset of the pointer *to* the entry (bucket slot or previous
        entry's next field)."""
        nb, _count, buckets_off = self._header(ctx)
        h = fnv1a64(key)
        slot = buckets_off + 8 * (h % nb)
        ptr_off = slot
        entry = self.pool.read_u64(ctx, ptr_off)
        while entry:
            nxt, eh, key_len, val_off, val_len, ekey = self._read_entry(ctx, entry)
            if eh == h and ekey == key:
                return slot, ptr_off, entry, {
                    "next": nxt, "val_off": val_off, "val_len": val_len,
                    "key_len": key_len,
                }
            ptr_off = entry  # next field is at offset 0 of the entry
            entry = nxt
        return slot, ptr_off, 0, {}

    # ------------------------------------------------------------------ public API

    def put(self, ctx, key: bytes, value: bytes, *, reserve: int = 0) -> None:
        """Insert or replace, crash-atomically.

        ``reserve`` asks for at least that much value-blob capacity on
        insert; a later replace whose value fits the existing blob's
        capacity is done *in place* (undo-logged overwrite) instead of
        allocate-new/free-old.  Frequently rewritten records thereby keep
        one stable blob address for their whole life — which also keeps
        pool layout independent of how concurrent writers interleave.
        """
        if not isinstance(key, bytes) or not key:
            raise PmdkError("key must be non-empty bytes")
        with self._lock:
            ctx.delay(LOCK_OVERHEAD_NS, note="map-lock")
            slot, ptr_off, entry, fields = self._find(ctx, key)
            if entry and value and \
                    len(value) <= self.pool.usable_size(fields["val_off"]):
                with Transaction(self.pool, ctx) as tx:
                    # snapshot the live value bytes plus the length word,
                    # then overwrite in place
                    tx.add_range(
                        fields["val_off"],
                        max(fields["val_len"], len(value)),
                    )
                    self.pool.write(ctx, fields["val_off"], value)
                    self.pool.persist(ctx, fields["val_off"], len(value))
                    tx.add_range(entry + 24, 16)
                    self.pool.write(
                        ctx, entry + 24,
                        struct.pack("<QQ", fields["val_off"], len(value)),
                    )
                return
            with Transaction(self.pool, ctx) as tx:
                val_off = self.pool.malloc(
                    ctx, max(len(value), 1, reserve), tx=tx
                )
                if value:
                    self.pool.write(ctx, val_off, value)
                    self.pool.persist(ctx, val_off, len(value))
                if entry:
                    old_val = fields["val_off"]
                    tx.add_range(entry + 24, 16)  # val_off, val_len
                    self.pool.write(
                        ctx, entry + 24, struct.pack("<QQ", val_off, len(value))
                    )
                    tx.on_commit(lambda: self.pool.free(ctx, old_val))
                else:
                    h = fnv1a64(key)
                    entry_off = self.pool.malloc(
                        ctx, ENTRY_FIXED + len(key), tx=tx
                    )
                    head = self.pool.read_u64(ctx, slot)
                    self.pool.write(
                        ctx, entry_off,
                        _ENTRY.pack(head, h, len(key), 0, val_off, len(value))
                        + key,
                    )
                    self.pool.persist(ctx, entry_off, ENTRY_FIXED + len(key))
                    tx.add_range(slot, 8)
                    self.pool.write(ctx, slot, struct.pack("<Q", entry_off))
                    _nb, count, _bo = self._header(ctx)
                    tx.add_range(self.hdr_off + 8, 8)
                    self.pool.write(
                        ctx, self.hdr_off + 8, struct.pack("<Q", count + 1)
                    )
            nb, count, _ = self._header(ctx)
            if count > MAX_LOAD_FACTOR * nb:
                self._resize(ctx, nb * GROWTH)

    def get(self, ctx, key: bytes) -> bytes | None:
        """Look up and copy out the value (charged PMEM reads)."""
        with self._lock:
            ctx.delay(LOCK_OVERHEAD_NS, note="map-lock")
            _slot, _ptr, entry, fields = self._find(ctx, key)
            if not entry:
                return None
            return bytes(
                self.pool.read(ctx, fields["val_off"], fields["val_len"])
            )

    def get_ref(self, ctx, key: bytes) -> tuple[int, int] | None:
        """Look up and return (val_off, val_len) without copying the value —
        the zero-copy path pMEMCPY loads through."""
        with self._lock:
            ctx.delay(LOCK_OVERHEAD_NS, note="map-lock")
            _slot, _ptr, entry, fields = self._find(ctx, key)
            if not entry:
                return None
            return fields["val_off"], fields["val_len"]

    def contains(self, ctx, key: bytes) -> bool:
        return self.get_ref(ctx, key) is not None

    def delete(self, ctx, key: bytes) -> bool:
        with self._lock:
            ctx.delay(LOCK_OVERHEAD_NS, note="map-lock")
            _slot, ptr_off, entry, fields = self._find(ctx, key)
            if not entry:
                return False
            with Transaction(self.pool, ctx) as tx:
                tx.add_range(ptr_off, 8)
                self.pool.write(ctx, ptr_off, struct.pack("<Q", fields["next"]))
                _nb, count, _ = self._header(ctx)
                tx.add_range(self.hdr_off + 8, 8)
                self.pool.write(ctx, self.hdr_off + 8, struct.pack("<Q", count - 1))
                val_off, entry_off = fields["val_off"], entry
                tx.on_commit(lambda: (
                    self.pool.free(ctx, val_off),
                    self.pool.free(ctx, entry_off),
                ))
            return True

    def keys(self, ctx) -> list[bytes]:
        return [k for k, _v in self.items(ctx)]

    def items(self, ctx) -> list[tuple[bytes, bytes]]:
        out = []
        with self._lock:
            nb, _count, buckets_off = self._header(ctx)
            for b in range(nb):
                entry = self.pool.read_u64(ctx, buckets_off + 8 * b)
                while entry:
                    nxt, _h, _kl, val_off, val_len, key = self._read_entry(ctx, entry)
                    out.append(
                        (key, bytes(self.pool.read(ctx, val_off, val_len)))
                    )
                    entry = nxt
        return sorted(out)

    # ------------------------------------------------------------------ resize

    def _resize(self, ctx, new_nbuckets: int) -> None:
        """Grow the bucket array and relink every entry, in one transaction."""
        nb, count, old_buckets = self._header(ctx)
        entries: list[tuple[int, int]] = []  # (entry_off, hash)
        for b in range(nb):
            entry = self.pool.read_u64(ctx, old_buckets + 8 * b)
            while entry:
                nxt, h, _kl, _vo, _vl, _key = self._read_entry(ctx, entry)
                entries.append((entry, h))
                entry = nxt
        with Transaction(self.pool, ctx) as tx:
            new_buckets = self.pool.malloc(ctx, new_nbuckets * 8, tx=tx)
            heads = [0] * new_nbuckets
            for entry_off, h in entries:
                slot = h % new_nbuckets
                tx.add_range(entry_off, 8)  # next field
                self.pool.write(ctx, entry_off, struct.pack("<Q", heads[slot]))
                heads[slot] = entry_off
            self.pool.write(
                ctx, new_buckets, struct.pack(f"<{new_nbuckets}Q", *heads)
            )
            self.pool.persist(ctx, new_buckets, new_nbuckets * 8)
            tx.add_range(self.hdr_off, HEADER_SIZE)
            self.pool.write(
                ctx, self.hdr_off,
                struct.pack("<QQQ", new_nbuckets, count, new_buckets),
            )
            tx.on_commit(lambda: self.pool.free(ctx, old_buckets))
