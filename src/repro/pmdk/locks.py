"""Persistent (robust) locks: mutexes, reader-writer locks, striped tables.

A PMEM-resident lock is an 8-byte owner word.  Like PMDK's
``pmemobj_mutex``/``pmemobj_rwlock``, the persistent state exists so a
*crashed* holder can be detected and the lock recovered at pool open:
re-instantiating with ``recover=True`` (what the ``open`` classmethods do)
clears the owner word.  Intra-process arbitration is delegated to volatile
state — also PMDK's strategy: the persistent word is never used for runtime
arbitration.

All locks here are **non-reentrant**, mirroring the modeled
``pmemobj_mutex`` semantics: a thread re-acquiring a lock it already holds
raises :class:`~repro.errors.PmdkError` instead of silently succeeding.

Every acquire/release pair is charged :data:`LOCK_OVERHEAD_NS` and reported
to the rank's :class:`~repro.sim.engine.Context` via
``lock_acquired``/``lock_released``, so critical sections serialize in the
*timing pass* (not just functionally) and feed the post-run lock-discipline
checker (:mod:`repro.sim.lockcheck`).

The RW/striped locks take a ``replay`` flag.  With ``replay=False`` the
lock keeps functional mutual exclusion, the overhead charge, and the
checker events, but emits no Acquire/Release trace ops — the timing pass
then models the section exactly as the original global namespace mutex
did (functional serialization only).  The legacy single-exclusive-lane
configuration (``meta_stripes=1, meta_rw=False`` — PMCPY-A) uses this so
its published figure timings stay stable; every striped or RW
configuration replays full mutual exclusion.

:class:`PmemStripedLocks` is the metadata-concurrency building block: a
persistent table of ``nstripes`` owner words, keys hashed onto stripes with
the same FNV-1a the namespace hashtable uses, so independent variables land
on independent lock lanes.
"""

from __future__ import annotations

from ..errors import PmdkError
from ..shm.sync import _ThreadRWCore as _RWCore  # noqa: F401 - re-export
from ..telemetry import metrics_for

#: modeled cost of an uncontended persistent-lock acquire/release pair
LOCK_OVERHEAD_NS = 60.0


def _note_acquire(ctx, contended: bool) -> None:
    """Typed lock telemetry shared by every lock flavour."""
    reg = metrics_for(ctx)
    reg.counter("pmdk.lock.acquires").add()
    if contended:
        reg.counter("pmdk.lock.contended").add()


def _note_held(ctx, t0: float) -> None:
    metrics_for(ctx).histogram("pmdk.lock.held.ns").observe(ctx.lb_ns - t0)


def fnv1a64(data: bytes) -> int:
    """FNV-1a: stable across runs (unlike Python's salted ``hash``)."""
    h = 0xCBF29CE484222325
    for b in data:
        h ^= b
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


class PmemMutex:
    """Robust persistent mutex (``pmemobj_mutex``-style, non-reentrant)."""

    def __init__(self, pool, off: int, *, name: str | None = None,
                 recover: bool = False, ctx=None):
        self.pool = pool
        self.off = off
        self.name = name or f"pmem-mutex@{id(pool):x}+{off}"
        self._core = pool.locks.mutex_core(("mutex", off))
        if recover:
            if ctx is None:
                raise PmdkError("recover requires a ctx to charge the store")
            pool.write_u64(ctx, off, 0)
        pool.register_mutex(self)

    @classmethod
    def alloc(cls, ctx, pool, *, name: str | None = None) -> "PmemMutex":
        """Allocate the owner word from the pool heap and return the mutex."""
        off = pool.malloc(ctx, 8)
        pool.write_u64(ctx, off, 0)
        return cls(pool, off, name=name)

    @classmethod
    def open(cls, ctx, pool, off: int, *, name: str | None = None) -> "PmemMutex":
        """Attach to an existing lock word, clearing any dead owner."""
        return cls(pool, off, name=name, recover=True, ctx=ctx)

    def acquire(self, ctx) -> bool:
        """Blocking acquire; returns True when the lock was contended.

        Re-acquiring from the holding thread raises :class:`PmdkError` —
        the modeled ``pmemobj_mutex`` is non-reentrant.
        """
        contended = self._core.acquire()
        self.pool.write_u64(ctx, self.off, ctx.rank + 1)
        ctx.delay(LOCK_OVERHEAD_NS, note="pmem-lock")
        ctx.lock_acquired(self.name)
        _note_acquire(ctx, contended)
        return contended

    def release(self, ctx) -> None:
        owner = self.pool.read_u64(ctx, self.off)
        if owner != ctx.rank + 1:
            raise PmdkError(
                f"rank {ctx.rank} releasing lock owned by "
                f"{owner - 1 if owner else 'nobody'}"
            )
        self.pool.write_u64(ctx, self.off, 0)
        ctx.lock_released(self.name)
        self._core.release()

    def holder(self, ctx) -> int | None:
        owner = self.pool.read_u64(ctx, self.off)
        return owner - 1 if owner else None

    class _Guard:
        def __init__(self, mutex, ctx):
            self.mutex, self.ctx = mutex, ctx
            self.contended = False
            self._t0 = 0.0

        def __enter__(self):
            self.contended = self.mutex.acquire(self.ctx)
            self._t0 = self.ctx.lb_ns
            return self

        def __exit__(self, *exc):
            _note_held(self.ctx, self._t0)
            self.mutex.release(self.ctx)
            return False

    def guard(self, ctx) -> "_Guard":
        """``with mutex.guard(ctx): ...``"""
        return PmemMutex._Guard(self, ctx)


class PmemRWLock:
    """Robust persistent reader-writer lock (``pmemobj_rwlock``-style).

    The owner word tracks only the *exclusive* holder (readers never touch
    persistent state — recovery has nothing to clean up after a crashed
    reader, exactly as with pthread rwlocks in PMDK).  Shared acquisitions
    therefore skip the owner-word store, making the read path cheaper than
    the write path.
    """

    def __init__(self, pool, off: int, *, name: str | None = None,
                 recover: bool = False, ctx=None, replay: bool = True):
        self.pool = pool
        self.off = off
        self.name = name or f"pmem-rwlock@{id(pool):x}+{off}"
        self.replay = replay
        self._core = pool.locks.rw_core(("rw", off))
        if recover:
            if ctx is None:
                raise PmdkError("recover requires a ctx to charge the store")
            pool.write_u64(ctx, off, 0)
        pool.register_mutex(self)

    @classmethod
    def alloc(cls, ctx, pool, *, name: str | None = None,
              replay: bool = True) -> "PmemRWLock":
        off = pool.malloc(ctx, 8)
        pool.write_u64(ctx, off, 0)
        return cls(pool, off, name=name, replay=replay)

    @classmethod
    def open(cls, ctx, pool, off: int, *, name: str | None = None,
             replay: bool = True) -> "PmemRWLock":
        return cls(pool, off, name=name, recover=True, ctx=ctx, replay=replay)

    def acquire_read(self, ctx) -> bool:
        contended = self._core.acquire_read()
        ctx.delay(LOCK_OVERHEAD_NS, note="pmem-lock")
        ctx.lock_acquired(self.name, shared=True, replay=self.replay)
        _note_acquire(ctx, contended)
        return contended

    def release_read(self, ctx) -> None:
        ctx.lock_released(self.name, replay=self.replay)
        self._core.release_read()

    def acquire_write(self, ctx) -> bool:
        contended = self._core.acquire_write()
        self.pool.write_u64(ctx, self.off, ctx.rank + 1)
        ctx.delay(LOCK_OVERHEAD_NS, note="pmem-lock")
        ctx.lock_acquired(self.name, replay=self.replay)
        _note_acquire(ctx, contended)
        return contended

    def release_write(self, ctx) -> None:
        owner = self.pool.read_u64(ctx, self.off)
        if owner != ctx.rank + 1:
            raise PmdkError(
                f"rank {ctx.rank} releasing rwlock owned by "
                f"{owner - 1 if owner else 'nobody'}"
            )
        self.pool.write_u64(ctx, self.off, 0)
        ctx.lock_released(self.name, replay=self.replay)
        self._core.release_write()

    def holder(self, ctx) -> int | None:
        """The exclusive holder's rank, or None (readers are not tracked)."""
        owner = self.pool.read_u64(ctx, self.off)
        return owner - 1 if owner else None

    class _Guard:
        def __init__(self, lock, ctx, shared: bool):
            self.lock, self.ctx, self.shared = lock, ctx, shared
            self.contended = False
            self._t0 = 0.0

        def __enter__(self):
            if self.shared:
                self.contended = self.lock.acquire_read(self.ctx)
            else:
                self.contended = self.lock.acquire_write(self.ctx)
            self._t0 = self.ctx.lb_ns
            return self

        def __exit__(self, *exc):
            _note_held(self.ctx, self._t0)
            if self.shared:
                self.lock.release_read(self.ctx)
            else:
                self.lock.release_write(self.ctx)
            return False

    def read_guard(self, ctx) -> "_Guard":
        return PmemRWLock._Guard(self, ctx, shared=True)

    def write_guard(self, ctx) -> "_Guard":
        return PmemRWLock._Guard(self, ctx, shared=False)


class VolatileRWLock:
    """A named DRAM reader-writer lock charged like a persistent one.

    Used where the backing store is a filesystem rather than a pool (the
    hierarchical layout's flock-style per-variable metadata locks): there
    is no owner word to recover, but the modeled cost, the timing-pass
    serialization, and the discipline-checker events are identical.
    """

    def __init__(self, name: str, *, replay: bool = True, core=None):
        self.name = name
        self.replay = replay
        self._core = core if core is not None else _RWCore()

    def acquire_read(self, ctx) -> bool:
        contended = self._core.acquire_read()
        ctx.delay(LOCK_OVERHEAD_NS, note="ns-lock")
        ctx.lock_acquired(self.name, shared=True, replay=self.replay)
        _note_acquire(ctx, contended)
        return contended

    def release_read(self, ctx) -> None:
        ctx.lock_released(self.name, replay=self.replay)
        self._core.release_read()

    def acquire_write(self, ctx) -> bool:
        contended = self._core.acquire_write()
        ctx.delay(LOCK_OVERHEAD_NS, note="ns-lock")
        ctx.lock_acquired(self.name, replay=self.replay)
        _note_acquire(ctx, contended)
        return contended

    def release_write(self, ctx) -> None:
        ctx.lock_released(self.name, replay=self.replay)
        self._core.release_write()


class PmemStripedLocks:
    """A persistent table of ``nstripes`` reader-writer lock words.

    Keys hash onto stripes with FNV-1a — the same function the namespace
    hashtable buckets with — so a key's stripe is stable across runs and
    across ranks, and distinct keys spread across independent lock lanes.
    Recovery at pool open clears every stripe's owner word, preserving the
    robust-mutex semantics per lane.

    A *whole-table* guard (``all_guard``) acquires every stripe in
    ascending index order — the canonical lock order the discipline checker
    verifies — giving namespace-wide operations (listing, teardown)
    exclusivity against every per-key critical section.
    """

    def __init__(self, pool, off: int, nstripes: int, *,
                 name: str = "striped", recover: bool = False, ctx=None,
                 replay: bool = True):
        if nstripes < 1:
            raise PmdkError("nstripes must be >= 1")
        self.pool = pool
        self.off = off
        self.nstripes = nstripes
        self.name = name
        self.replay = replay
        self.stripes = [
            PmemRWLock(pool, off + 8 * i, name=f"{name}/s{i}",
                       recover=recover, ctx=ctx, replay=replay)
            for i in range(nstripes)
        ]

    @classmethod
    def alloc(cls, ctx, pool, nstripes: int, *, name: str = "striped",
              replay: bool = True) -> "PmemStripedLocks":
        """Allocate and zero ``nstripes`` owner words from the pool heap."""
        if nstripes < 1:
            raise PmdkError("nstripes must be >= 1")
        off = pool.malloc(ctx, 8 * nstripes)
        pool.write(ctx, off, bytes(8 * nstripes))
        pool.persist(ctx, off, 8 * nstripes)
        return cls(pool, off, nstripes, name=name, replay=replay)

    @classmethod
    def open(cls, ctx, pool, off: int, nstripes: int, *, name: str = "striped",
             replay: bool = True) -> "PmemStripedLocks":
        """Attach to an existing table, clearing any dead owners."""
        return cls(pool, off, nstripes, name=name, recover=True, ctx=ctx,
                   replay=replay)

    def stripe_index(self, key: bytes) -> int:
        return fnv1a64(key) % self.nstripes

    def lock(self, index: int) -> PmemRWLock:
        return self.stripes[index]

    def lock_for(self, key: bytes) -> PmemRWLock:
        return self.stripes[self.stripe_index(key)]

    class _AllGuard:
        def __init__(self, table, ctx):
            self.table, self.ctx = table, ctx
            self.contended = False
            self._held = 0
            self._t0 = 0.0

        def __enter__(self):
            for lock in self.table.stripes:
                if lock.acquire_write(self.ctx):
                    self.contended = True
                self._held += 1
            self._t0 = self.ctx.lb_ns
            return self

        def __exit__(self, *exc):
            _note_held(self.ctx, self._t0)
            for lock in reversed(self.table.stripes[: self._held]):
                lock.release_write(self.ctx)
            self._held = 0
            return False

    def all_guard(self, ctx) -> "_AllGuard":
        """Exclusive hold of every stripe, acquired in ascending order."""
        return PmemStripedLocks._AllGuard(self, ctx)
