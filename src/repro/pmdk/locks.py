"""Persistent (robust) mutexes.

A PMEM-resident lock is an 8-byte owner word.  Like PMDK's
``pmemobj_mutex``, the persistent state exists so a *crashed* holder can be
detected and the lock recovered at pool open: re-instantiating the mutex
with ``recover=True`` (what :func:`PmemMutex.open` does) clears the owner
word.  Intra-process mutual exclusion is delegated to a volatile
``threading.Lock`` — also PMDK's strategy: the persistent word is never used
for runtime arbitration.
"""

from __future__ import annotations

import threading

from ..errors import PmdkError

#: modeled cost of an uncontended persistent-lock acquire/release pair
LOCK_OVERHEAD_NS = 60.0


class PmemMutex:
    def __init__(self, pool, off: int, *, recover: bool = False, ctx=None):
        self.pool = pool
        self.off = off
        self._vlock = threading.RLock()
        if recover:
            if ctx is None:
                raise PmdkError("recover requires a ctx to charge the store")
            pool.write_u64(ctx, off, 0)
        pool.register_mutex(self)

    @classmethod
    def alloc(cls, ctx, pool) -> "PmemMutex":
        """Allocate the owner word from the pool heap and return the mutex."""
        off = pool.malloc(ctx, 8)
        pool.write_u64(ctx, off, 0)
        return cls(pool, off)

    @classmethod
    def open(cls, ctx, pool, off: int) -> "PmemMutex":
        """Attach to an existing lock word, clearing any dead owner."""
        return cls(pool, off, recover=True, ctx=ctx)

    def acquire(self, ctx) -> None:
        self._vlock.acquire()
        self.pool.write_u64(ctx, self.off, ctx.rank + 1)
        ctx.delay(LOCK_OVERHEAD_NS, note="pmem-lock")

    def release(self, ctx) -> None:
        owner = self.pool.read_u64(ctx, self.off)
        if owner != ctx.rank + 1:
            raise PmdkError(
                f"rank {ctx.rank} releasing lock owned by "
                f"{owner - 1 if owner else 'nobody'}"
            )
        self.pool.write_u64(ctx, self.off, 0)
        self._vlock.release()

    def holder(self, ctx) -> int | None:
        owner = self.pool.read_u64(ctx, self.off)
        return owner - 1 if owner else None

    class _Guard:
        def __init__(self, mutex, ctx):
            self.mutex, self.ctx = mutex, ctx

        def __enter__(self):
            self.mutex.acquire(self.ctx)
            return self.mutex

        def __exit__(self, *exc):
            self.mutex.release(self.ctx)
            return False

    def guard(self, ctx) -> "_Guard":
        """``with mutex.guard(ctx): ...``"""
        return PmemMutex._Guard(self, ctx)
