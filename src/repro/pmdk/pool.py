"""The pmemobj-style pool: superblock, root pointer, heap, undo-log lanes.

On-device layout (offsets relative to the pool base)::

    0    magic               8s   b"PMDKPOOL"
    8    version             u32
    12   flags               u32
    16   pool_size           u64
    24   root_off            u64   (0 = unset)
    32   heap_off            u64
    40   heap_size           u64
    48   nlanes              u32
    52   lane_log_size       u32
    56   lanes_off           u64
    64   header_crc32        u32
    128  ... lanes (nlanes * lane_log_size) ...
         ... heap ...

Each *lane* holds one thread's undo log (PMDK's lane concept): a ``count``
word followed by ``count`` valid entries ``[offset u64, length u64, data]``.
``count`` is persisted *after* the entry body, so a torn entry past the
count is ignored by recovery.

Access to the pool goes through a per-rank *region* object (a
:class:`~repro.kernel.dax.DaxMapping`, or the :class:`RawRegion` fallback),
so page-fault/MAP_SYNC charging follows whichever mapping the rank created.
"""

from __future__ import annotations

import struct
import threading
import zlib

import numpy as np

from ..errors import BadAddressError, PoolCorruptError
from ..shm.sync import LocalLockProvider
from ..mem.device import PMEMDevice
from ..mem.memcpy import charge_pmem_read, charge_pmem_write
from ..telemetry import span
from .alloc import Heap

POOL_MAGIC = b"PMDKPOOL"
POOL_VERSION = 1
POOL_HEADER_SIZE = 128
_HDR = struct.Struct("<8sIIQQQQIIQ")  # through lanes_off
_CRC_OFF = _HDR.size  # crc stored right after the packed header


class RawRegion:
    """Direct, page-fault-model-free access to a device range.

    Duck-types :class:`~repro.kernel.dax.DaxMapping`'s access protocol
    (``write``/``read``/``persist``/``view``), charging plain PMEM costs.
    Used by unit tests and by pools created on a bare device.
    """

    def __init__(self, device: PMEMDevice, base: int, size: int):
        if base < 0 or base + size > device.capacity:
            raise BadAddressError("region outside device")
        self.device = device
        self.base = base
        self.size = size

    def _check(self, off: int, size: int) -> None:
        if off < 0 or off + size > self.size:
            raise BadAddressError(
                f"region access [{off}, {off + size}) outside size {self.size}"
            )

    def write(self, ctx, off: int, data, *, model_bytes: float | None = None) -> int:
        buf = PMEMDevice._as_bytes(data)
        self._check(off, buf.size)
        n = self.device.store(self.base + off, buf)
        charge_pmem_write(
            ctx, float(n) if model_bytes is None else float(model_bytes)
        )
        return n

    def read(self, ctx, off: int, size: int, *, model_bytes: float | None = None) -> np.ndarray:
        self._check(off, size)
        out = self.device.load(self.base + off, size)
        charge_pmem_read(
            ctx, float(size) if model_bytes is None else float(model_bytes)
        )
        return out

    def persist(self, ctx, off: int, size: int) -> None:
        self._check(off, size)
        self.device.persist(self.base + off, size)
        ctx.delay(200.0, note="persist")
        from ..telemetry import metrics_for, record

        record(ctx, "persist_calls")
        metrics_for(ctx).histogram("access.persist.bytes").observe(float(size))

    def view(self, off: int, size: int) -> np.ndarray:
        self._check(off, size)
        return self.device.view(self.base + off, size)


class PmemPool:
    """An open pool.  Thread-safe: ranks share the instance and attach their
    own access regions with :meth:`attach`."""

    def __init__(self, region, *, size: int):
        self._default_region = region
        self._regions: dict[int, object] = {}
        self.size = size
        self.lock = threading.RLock()
        self.heap: Heap | None = None
        # filled by create/open
        self.root_off = 0
        self.heap_off = 0
        self.heap_size = 0
        self.nlanes = 0
        self.lane_log_size = 0
        self.lanes_off = 0
        self._lane_free: set[int] = set()
        self._lane_cond = threading.Condition()
        self._lane_cell = None  # shared mode: cross-process lane bitmap
        self._mutex_registry: list = []
        #: volatile-lock-core provider for every lock living in this pool —
        #: in-process cores by default; attach_shared swaps in shm cores
        self.locks = LocalLockProvider()

    # ------------------------------------------------------------------ regions

    def attach(self, ctx, region) -> None:
        """Register ``region`` as rank ``ctx.rank``'s access path."""
        with self.lock:
            self._regions[ctx.rank] = region

    def region(self, ctx):
        return self._regions.get(ctx.rank, self._default_region)

    # convenience charged accessors --------------------------------------------

    def write(self, ctx, off: int, data, *, model_bytes: float | None = None) -> int:
        return self.region(ctx).write(ctx, off, data, model_bytes=model_bytes)

    def read(self, ctx, off: int, size: int, *, model_bytes: float | None = None) -> np.ndarray:
        return self.region(ctx).read(ctx, off, size, model_bytes=model_bytes)

    def persist(self, ctx, off: int, size: int) -> None:
        self.region(ctx).persist(ctx, off, size)

    def view(self, off: int, size: int) -> np.ndarray:
        return self._default_region.view(off, size)

    def touch(self, ctx, off: int, size: int) -> None:
        """Charge page faults for a zero-copy access through this rank's
        region (no-op for regions without a fault model)."""
        region = self.region(ctx)
        touch = getattr(region, "touch", None)
        if touch is not None:
            touch(ctx, off, size)

    def read_u64(self, ctx, off: int) -> int:
        return int(self.read(ctx, off, 8).view("<u8")[0])

    def write_u64(self, ctx, off: int, value: int, *, persist: bool = True) -> None:
        self.write(ctx, off, struct.pack("<Q", value))
        if persist:
            self.persist(ctx, off, 8)

    # ------------------------------------------------------------------ create/open

    @classmethod
    def create(
        cls,
        ctx,
        region,
        *,
        size: int,
        nlanes: int = 16,
        lane_log_size: int = 64 * 1024,
    ) -> "PmemPool":
        """Format a new pool in ``region`` and return it opened."""
        lanes_off = POOL_HEADER_SIZE
        heap_off = lanes_off + nlanes * lane_log_size
        heap_off = -(-heap_off // 64) * 64
        if heap_off + 4096 > size:
            raise PoolCorruptError(
                f"pool of {size} bytes too small for {nlanes} lanes of "
                f"{lane_log_size} bytes"
            )
        heap_size = size - heap_off
        pool = cls(region, size=size)
        pool.root_off = 0
        pool.heap_off = heap_off
        pool.heap_size = heap_size
        pool.nlanes = nlanes
        pool.lane_log_size = lane_log_size
        pool.lanes_off = lanes_off
        pool._write_header(ctx)
        # zero the lane counts
        for lane in range(nlanes):
            pool.write_u64(ctx, lanes_off + lane * lane_log_size, 0)
        pool.heap = Heap.format(ctx, pool, heap_off, heap_size)
        pool._lane_free = set(range(nlanes))
        return pool

    @classmethod
    def open(cls, ctx, region, *, size: int) -> "PmemPool":
        """Open an existing pool: validate the header, run lane recovery,
        rebuild the volatile heap state, clear robust locks."""
        pool = cls(region, size=size)
        pool._read_header(ctx)
        pool._recover(ctx)
        pool.heap = Heap.rebuild(ctx, pool, pool.heap_off, pool.heap_size)
        pool._lane_free = set(range(pool.nlanes))
        return pool

    @classmethod
    def open_uncharged(cls, region, *, size: int) -> "PmemPool":
        """Procs-engine non-root attach: parse the header through uncharged
        ``view`` reads and skip recovery (rank 0 already ran it) — mirrors
        the thread engine, where non-root ranks receive the open pool object
        through the board for free.  Must be followed by
        :meth:`attach_shared` so the heap's volatile maps stay coherent."""
        pool = cls(region, size=size)
        raw = bytes(region.view(0, POOL_HEADER_SIZE))
        (magic, version, _flags, psize, root_off, heap_off, heap_size,
         nlanes, lane_log_size, lanes_off) = _HDR.unpack(raw[: _HDR.size])
        (crc,) = struct.unpack_from("<I", raw, _CRC_OFF)
        if magic != POOL_MAGIC:
            raise PoolCorruptError(f"bad magic {magic!r}")
        if version != POOL_VERSION:
            raise PoolCorruptError(f"unsupported version {version}")
        if crc != cls._header_crc(raw):
            raise PoolCorruptError("header checksum mismatch")
        if psize != size:
            raise PoolCorruptError(
                f"pool size mismatch: header says {psize}, region is {size}"
            )
        pool.root_off = root_off
        pool.heap_off = heap_off
        pool.heap_size = heap_size
        pool.nlanes = nlanes
        pool.lane_log_size = lane_log_size
        pool.lanes_off = lanes_off
        pool.heap = Heap(pool, heap_off, heap_size)
        return pool

    def attach_shared(self, provider) -> None:
        """Make every volatile structure of this pool cross-process: lock
        cores, the heap's free/used maps, and the undo-log lane bitmap all
        move to the shared domain, keyed by stable pool offsets so every
        worker's handles arbitrate together."""
        self.locks = provider
        self._lane_cell = provider.lane_cell(self.lanes_off, self.nlanes)
        if self.heap is not None:
            self.heap.enable_shared(provider)

    @staticmethod
    def _header_crc(hdr: bytes) -> int:
        # root_off (bytes 24..32) is a mutable field updated by set_root
        # without re-checksumming; exclude it from the CRC.
        return zlib.crc32(hdr[:24] + b"\x00" * 8 + hdr[32:_HDR.size])

    def _write_header(self, ctx) -> None:
        hdr = _HDR.pack(
            POOL_MAGIC, POOL_VERSION, 0, self.size, self.root_off,
            self.heap_off, self.heap_size, self.nlanes, self.lane_log_size,
            self.lanes_off,
        )
        crc = self._header_crc(hdr)
        self.write(ctx, 0, hdr)
        self.write(ctx, _CRC_OFF, struct.pack("<I", crc))
        self.persist(ctx, 0, POOL_HEADER_SIZE)

    def _read_header(self, ctx) -> None:
        raw = bytes(self.read(ctx, 0, POOL_HEADER_SIZE))
        (magic, version, _flags, psize, root_off, heap_off, heap_size,
         nlanes, lane_log_size, lanes_off) = _HDR.unpack(raw[: _HDR.size])
        (crc,) = struct.unpack_from("<I", raw, _CRC_OFF)
        if magic != POOL_MAGIC:
            raise PoolCorruptError(f"bad magic {magic!r}")
        if version != POOL_VERSION:
            raise PoolCorruptError(f"unsupported version {version}")
        if crc != self._header_crc(raw):
            raise PoolCorruptError("header checksum mismatch")
        if psize != self.size:
            raise PoolCorruptError(
                f"pool size mismatch: header says {psize}, region is {self.size}"
            )
        self.root_off = root_off
        self.heap_off = heap_off
        self.heap_size = heap_size
        self.nlanes = nlanes
        self.lane_log_size = lane_log_size
        self.lanes_off = lanes_off

    # ------------------------------------------------------------------ root object

    def set_root(self, ctx, off: int) -> None:
        """Persistently point the pool root at ``off`` (atomic 8-byte store)."""
        self.root_off = off
        self.write_u64(ctx, 24, off)

    def root(self) -> int:
        return self.root_off

    # ------------------------------------------------------------------ lanes

    def lane_offset(self, lane: int) -> int:
        return self.lanes_off + lane * self.lane_log_size

    def acquire_lane(self, preferred: int | None = None) -> int:
        """Take a free lane — the ``preferred`` one when it is free (rank
        determinism; see :class:`~repro.pmdk.tx.Transaction`), else any."""
        if self._lane_cell is not None:
            return self._lane_cell.acquire_lane(preferred)
        with self._lane_cond:
            while not self._lane_free:
                self._lane_cond.wait()
            if preferred is not None and preferred in self._lane_free:
                self._lane_free.discard(preferred)
                return preferred
            return self._lane_free.pop()

    def release_lane(self, lane: int) -> None:
        if self._lane_cell is not None:
            self._lane_cell.release_lane(lane)
            return
        with self._lane_cond:
            self._lane_free.add(lane)
            self._lane_cond.notify()

    def _recover(self, ctx) -> None:
        """Apply every lane's undo log backward (crash rollback).

        A crash can leave a lane torn: the entry count durable while the
        entry bytes behind it never retired (the enumerator's reordered
        tiers produce exactly this).  Every header field is therefore
        validated against the lane window and the pool size, and only the
        valid prefix is applied — like PMDK's checksummed ulog, an entry
        that never became fully durable was never needed for rollback
        (its transaction cannot have started overwriting live data)."""
        for lane in range(self.nlanes):
            base = self.lane_offset(lane)
            lane_end = base + self.lane_log_size
            count = self.read_u64(ctx, base)
            if count == 0:
                continue
            entries = []
            pos = base + 8
            for _ in range(min(count, self.lane_log_size // 16)):
                if pos + 16 > lane_end:
                    break  # torn count: more entries than the lane holds
                off = self.read_u64(ctx, pos)
                length = self.read_u64(ctx, pos + 8)
                if (length == 0 or pos + 16 + length > lane_end
                        or off + length > self.size):
                    break  # torn entry header — garbage size or offset
                data = self.read(ctx, pos + 16, length)
                entries.append((off, data))
                pos += 16 + length
            for off, data in reversed(entries):
                self.write(ctx, off, data)
                self.persist(ctx, off, len(data))
            self.write_u64(ctx, base, 0)

    # ------------------------------------------------------------------ robust locks

    def register_mutex(self, mutex) -> None:
        with self.lock:
            self._mutex_registry.append(mutex)

    # ------------------------------------------------------------------ allocation façade

    def malloc(self, ctx, size: int, tx=None) -> int:
        if self.heap is None:
            raise PoolCorruptError("pool not formatted")
        with span(ctx, "pmdk.alloc", bytes=size):
            return self.heap.malloc(ctx, size, tx=tx)

    def free(self, ctx, off: int, tx=None) -> None:
        if self.heap is None:
            raise PoolCorruptError("pool not formatted")
        with span(ctx, "pmdk.free"):
            self.heap.free(ctx, off, tx=tx)

    def usable_size(self, off: int) -> int:
        return self.heap.usable_size(off)
