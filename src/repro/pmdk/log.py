"""Persistent append-only log — the libpmemlog analog, and the §2.2 DStore
pattern ("DStore uses PMEM to store the logs rather than as the main store,
offering greater performance while still offering predictable consistency").

On-device layout (inside a pool allocation)::

    header (32B): magic u32 | pad u32 | capacity u64 | head u64 | pad u64
    records:      len u32 | crc32 u32 | payload ...   (8-byte aligned)

Append protocol: write the framed record at ``head``, persist it, *then*
persist the new head — a crash leaves at worst a torn record beyond the
committed head, which replay never sees.  The head update is an aligned
8-byte store (crash-atomic under the cacheline model).
"""

from __future__ import annotations

import struct
import zlib

from ..errors import PmdkError, PoolCorruptError

MAGIC = 0x504C4F47  # "PLOG"
HEADER_SIZE = 32
_HDR = struct.Struct("<IIQQQ")
_REC = struct.Struct("<II")


def _align8(n: int) -> int:
    return -(-n // 8) * 8


class PmemLog:
    """Handle to a log living at ``base`` (a pool heap allocation)."""

    def __init__(self, pool, base: int, capacity: int):
        self.pool = pool
        self.base = base
        self.capacity = capacity

    # ------------------------------------------------------------------ lifecycle

    @classmethod
    def create(cls, ctx, pool, *, capacity: int) -> "PmemLog":
        """Allocate and format a log able to hold ``capacity`` payload
        bytes (plus framing)."""
        total = HEADER_SIZE + _align8(capacity)
        base = pool.malloc(ctx, total)
        log = cls(pool, base, total - HEADER_SIZE)
        pool.write(ctx, base, _HDR.pack(MAGIC, 0, log.capacity, 0, 0))
        pool.persist(ctx, base, HEADER_SIZE)
        return log

    @classmethod
    def open(cls, ctx, pool, base: int) -> "PmemLog":
        raw = bytes(pool.read(ctx, base, HEADER_SIZE))
        magic, _pad, capacity, head, _pad2 = _HDR.unpack(raw)
        if magic != MAGIC:
            raise PoolCorruptError(f"not a pmemlog at {base}")
        if head > capacity:
            raise PoolCorruptError(f"log head {head} beyond capacity {capacity}")
        return cls(pool, base, capacity)

    # ------------------------------------------------------------------ state

    def head(self, ctx) -> int:
        return self.pool.read_u64(ctx, self.base + 16)

    def _set_head(self, ctx, value: int) -> None:
        self.pool.write_u64(ctx, self.base + 16, value)

    def remaining(self, ctx) -> int:
        return self.capacity - self.head(ctx)

    # ------------------------------------------------------------------ append

    def append(self, ctx, record: bytes) -> int:
        """Append one record; returns its offset within the log.  Raises
        :class:`PmdkError` when full (this log does not wrap — DStore-style
        logs are truncated by checkpointing instead)."""
        record = bytes(record)
        framed = _align8(_REC.size + len(record))
        head = self.head(ctx)
        if head + framed > self.capacity:
            raise PmdkError(
                f"log full: {framed} bytes needed, {self.capacity - head} left"
            )
        at = self.base + HEADER_SIZE + head
        self.pool.write(
            ctx, at, _REC.pack(len(record), zlib.crc32(record)) + record
        )
        self.pool.persist(ctx, at, _REC.size + len(record))
        # record durable before the head covers it
        self._set_head(ctx, head + framed)
        return head

    # ------------------------------------------------------------------ replay

    def records(self, ctx) -> list[bytes]:
        """Replay the committed records in order, verifying checksums."""
        out: list[bytes] = []
        head = self.head(ctx)
        pos = 0
        while pos < head:
            raw = bytes(self.pool.read(ctx, self.base + HEADER_SIZE + pos, _REC.size))
            length, crc = _REC.unpack(raw)
            if pos + _REC.size + length > head:
                raise PoolCorruptError(
                    f"log record at {pos} extends past committed head"
                )
            payload = bytes(self.pool.read(
                ctx, self.base + HEADER_SIZE + pos + _REC.size, length
            ))
            if zlib.crc32(payload) != crc:
                raise PoolCorruptError(f"log record at {pos} checksum mismatch")
            out.append(payload)
            pos += _align8(_REC.size + length)
        return out

    def truncate(self, ctx) -> None:
        """Discard every record (after a checkpoint has captured them)."""
        self._set_head(ctx, 0)

    def free(self, ctx) -> None:
        self.pool.free(ctx, self.base)
