"""Emulated Persistent Memory Development Kit (libpmemobj-style).

A real on-device byte layout over the DAX-mapped pool file:

- :class:`PmemPool` — superblock, root pointer, heap, per-lane undo logs;
- :mod:`~repro.pmdk.alloc` — boundary-tag persistent allocator whose
  volatile free lists are rebuilt by scanning headers at open (as PMDK
  rebuilds its runtime heap state);
- :mod:`~repro.pmdk.tx` — undo-log transactions with crash recovery;
- :class:`PmemHashmap` — the hashtable-with-chaining that pMEMCPY's flat
  namespace uses (paper §3 "Data Layout");
- :mod:`~repro.pmdk.locks` — robust persistent locks (:class:`PmemMutex`,
  :class:`PmemRWLock`, and the :class:`PmemStripedLocks` table pMEMCPY's
  metadata layer stripes its namespace over), cleared on pool open.

Everything is crash-testable: run the pool on a ``crash_sim=True`` device,
call ``device.crash()`` at any point, re-open the pool, and recovery must
restore a consistent state.
"""

from .pool import PmemPool, POOL_HEADER_SIZE, RawRegion
from .alloc import Heap
from .tx import Transaction
from .hashmap import PmemHashmap
from .locks import (
    LOCK_OVERHEAD_NS,
    PmemMutex,
    PmemRWLock,
    PmemStripedLocks,
    VolatileRWLock,
    fnv1a64,
)

__all__ = [
    "PmemPool",
    "POOL_HEADER_SIZE",
    "RawRegion",
    "Heap",
    "Transaction",
    "PmemHashmap",
    "LOCK_OVERHEAD_NS",
    "PmemMutex",
    "PmemRWLock",
    "PmemStripedLocks",
    "VolatileRWLock",
    "fnv1a64",
]
