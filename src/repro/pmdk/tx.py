"""Undo-log transactions over a pool lane.

Protocol (matching libpmemobj's undo-log semantics):

1. ``add_range(off, len)`` snapshots the *pre-image* of a range into the
   lane's log — entry body persisted first, then the entry count, so a torn
   entry past the count is invisible to recovery;
2. the caller then modifies the range in place (no persist required);
3. ``commit`` persists every snapshotted range and invalidates the log
   (count←0);
4. ``abort`` (or crash + pool re-open) applies the snapshots in reverse,
   restoring the pre-transaction state.

``on_commit``/``on_abort`` callbacks let volatile caches (allocator free
lists, hashmap mirrors) stay consistent with whichever way the transaction
resolves — the persistent image is always governed by the log alone.
"""

from __future__ import annotations

import struct

from ..errors import TransactionAborted, PmdkError
from ..telemetry import tracer_for


class Transaction:
    """Context manager: commits on clean exit, aborts on exception."""

    def __init__(self, pool, ctx):
        self.pool = pool
        self.ctx = ctx
        self.lane: int | None = None
        self._log_pos = 0
        self._count = 0
        self._ranges: list[tuple[int, int]] = []
        self._on_commit: list = []
        self._on_abort: list = []
        self._done = False
        self._tracer = None
        self._span = None

    # ------------------------------------------------------------------ lifecycle

    def __enter__(self) -> "Transaction":
        # rank-keyed lane preference: a rank's transactions land in the
        # same lane whenever it is free, so lane-log placement (and hence
        # which log pages each rank first-touches) does not depend on how
        # concurrent transactions happened to interleave — the thread and
        # process engines produce identical pool images and fault charges
        rank = getattr(self.ctx, "rank", None)
        preferred = rank % self.pool.nlanes if rank is not None else None
        self.lane = self.pool.acquire_lane(preferred=preferred)
        self._log_pos = self.pool.lane_offset(self.lane) + 8
        # the tx span covers the whole scope, commit/abort included, and is
        # closed in __exit__'s finally so an aborting exception can't leak it
        self._tracer = tracer_for(self.ctx)
        self._span = self._tracer.begin(self.ctx, "pmdk.tx",
                                        {"lane": self.lane})
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        try:
            if exc_type is None:
                self.commit()
                return False
            self.abort()
            # swallow only explicit aborts; real errors propagate
            return exc_type is TransactionAborted
        finally:
            status = "ok" if exc_type is None \
                else f"abort:{exc_type.__name__}"
            self._tracer.end(self.ctx, self._span, status)

    def _require_active(self) -> None:
        if self.lane is None or self._done:
            raise PmdkError("transaction not active")

    # ------------------------------------------------------------------ callbacks

    def on_commit(self, fn) -> None:
        self._require_active()
        self._on_commit.append(fn)

    def on_abort(self, fn) -> None:
        self._require_active()
        self._on_abort.append(fn)

    # ------------------------------------------------------------------ log ops

    def add_range(self, off: int, size: int) -> None:
        """Snapshot ``[off, off+size)`` into the undo log."""
        self._require_active()
        if size <= 0:
            return
        lane_base = self.pool.lane_offset(self.lane)
        lane_end = lane_base + self.pool.lane_log_size
        entry_size = 16 + size
        if self._log_pos + entry_size > lane_end:
            raise PmdkError(
                f"undo log overflow: lane {self.lane} "
                f"({self.pool.lane_log_size} bytes) cannot hold {entry_size} more"
            )
        pre = self.pool.read(self.ctx, off, size)
        self.pool.write(self.ctx, self._log_pos, struct.pack("<QQ", off, size))
        self.pool.write(self.ctx, self._log_pos + 16, pre)
        self.pool.persist(self.ctx, self._log_pos, entry_size)
        self._log_pos += entry_size
        self._count += 1
        # entry body durable before the count covers it — and the count
        # itself durable before the caller's in-place modification, or a
        # crash could retire the modification without its undo entry
        self.pool.write_u64(self.ctx, lane_base, self._count)
        self.pool.persist(self.ctx, lane_base, 8)
        self._ranges.append((off, size))

    def write(self, off: int, data, *, snapshot: bool = True) -> None:
        """Convenience: snapshot then modify in place."""
        buf = memoryview(bytes(data) if not isinstance(data, (bytes, bytearray, memoryview)) else data)
        if snapshot:
            self.add_range(off, len(buf))
        self.pool.write(self.ctx, off, bytes(buf))

    # ------------------------------------------------------------------ resolution

    def commit(self) -> None:
        self._require_active()
        for off, size in self._ranges:
            self.pool.persist(self.ctx, off, size)
        lane_base = self.pool.lane_offset(self.lane)
        # the invalidation must be durable before commit returns, or a
        # crash after "success" could replay the undo log and un-commit
        self.pool.write_u64(self.ctx, lane_base, 0)
        self.pool.persist(self.ctx, lane_base, 8)
        self._finish()
        for fn in self._on_commit:
            fn()

    def abort(self) -> None:
        self._require_active()
        # replay undo entries newest-first
        lane_base = self.pool.lane_offset(self.lane)
        pos = lane_base + 8
        entries = []
        for _ in range(self._count):
            off = self.pool.read_u64(self.ctx, pos)
            size = self.pool.read_u64(self.ctx, pos + 8)
            data = self.pool.read(self.ctx, pos + 16, size)
            entries.append((off, data))
            pos += 16 + size
        for off, data in reversed(entries):
            self.pool.write(self.ctx, off, data)
            self.pool.persist(self.ctx, off, len(data))
        self.pool.write_u64(self.ctx, lane_base, 0)
        self.pool.persist(self.ctx, lane_base, 8)
        self._finish()
        for fn in reversed(self._on_abort):
            fn()

    def _finish(self) -> None:
        self._done = True
        lane, self.lane = self.lane, None
        self.pool.release_lane(lane)
