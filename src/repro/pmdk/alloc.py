"""Persistent heap: boundary-tag allocator with volatile free lists.

On-device block format (all blocks 64-byte aligned)::

    [ header 16B | user data ... | footer 8B ]

    header:  size u64 (total block size)    status u32    magic u16  pad u16
    footer:  size u64

The *free lists are volatile* (a dict + sorted offset list in DRAM) and are
rebuilt at pool open by walking the headers — exactly PMDK's strategy of
reconstructing runtime heap state instead of persisting it.  Block headers
and footers on the device are the durable truth.

Boundary-tag updates are crash-atomic via the undo log: a split or a
coalesce rewrites a header and a *different* block's footer, and no write
ordering keeps the walk invariant (footer agrees with its covering header)
intact between those two stores — the crash-state enumerator readily finds
the torn window.  So malloc/free log the affected tags before mutating:
inside the caller's transaction when one is passed, otherwise inside an
internal single-op transaction (PMDK's non-transactional atomic
allocations use the same trick with redo logs).
"""

from __future__ import annotations

import bisect
import struct
import threading

from ..errors import AllocationError, PoolCorruptError

HEADER_SIZE = 16
FOOTER_SIZE = 8
ALIGN = 64
#: smallest block we bother splitting off as a remainder
MIN_BLOCK = 128

STATUS_FREE = 0xF1EE0001
STATUS_USED = 0xA1100001
BLOCK_MAGIC = 0x504D  # "PM"

_HDR = struct.Struct("<QIHH")
_FTR = struct.Struct("<Q")


def _align(n: int) -> int:
    return -(-n // ALIGN) * ALIGN


class _SharedHeapGuard:
    """Cross-process replacement for the heap's RLock: entry refreshes the
    volatile maps if another process mutated the heap; exit bumps the shared
    generation (conservatively — guarded sections are almost always
    mutations, and a spurious peer re-walk is cheap and uncharged)."""

    __slots__ = ("_heap", "_core", "_genblk")

    def __init__(self, heap, core, genblk):
        self._heap = heap
        self._core = core
        self._genblk = genblk

    def __enter__(self):
        self._core.acquire()
        gen = self._genblk.u64(0)
        if gen != self._heap._gen:
            self._heap._rebuild_from_view()
            self._heap._gen = gen
        return self

    def __exit__(self, *exc):
        gen = self._genblk.u64(0) + 1
        self._genblk.set_u64(0, gen)
        self._heap._gen = gen
        self._core.release()
        return False


class Heap:
    """Allocator over ``[heap_off, heap_off + heap_size)`` of a pool."""

    def __init__(self, pool, heap_off: int, heap_size: int):
        self.pool = pool
        self.heap_off = heap_off
        self.heap_size = heap_size // ALIGN * ALIGN
        self.heap_end = heap_off + self.heap_size
        self.lock = threading.RLock()
        self._free: dict[int, int] = {}      # block off -> total size
        self._free_sorted: list[int] = []    # offsets, ascending
        self._used: dict[int, int] = {}      # block off -> total size
        self._gen = -1                       # shared mode: last synced gen

    # ------------------------------------------------------------------ shared mode

    def enable_shared(self, provider) -> None:
        """Swap the in-process heap lock for a cross-process guard.

        The volatile free/used maps stay per-process *caches* of the durable
        boundary tags; a generation word in shared memory is bumped on every
        guarded section, and a process entering the guard with a stale local
        generation re-walks the device tags — through uncharged ``view``
        reads, so modeled time is identical to the thread engine, where the
        maps are simply shared objects.
        """
        core = provider.mutex_core(("heap", self.heap_off), reentrant=True)
        genblk = provider.state_block(("heap-gen", self.heap_off), 16)
        self._gen = -1
        self.lock = _SharedHeapGuard(self, core, genblk)

    def _rebuild_from_view(self) -> None:
        """Re-derive the volatile maps from the on-device boundary tags
        (uncharged: peers' volatile state was never paid for under threads
        either — the durable tags are the only truth)."""
        self._free.clear()
        self._free_sorted = []
        self._used.clear()
        pos = self.heap_off
        while pos < self.heap_end:
            raw = bytes(self.pool.view(pos, HEADER_SIZE))
            size, status, magic, _pad = _HDR.unpack(raw)
            if magic != BLOCK_MAGIC or size < ALIGN or size % ALIGN or \
               pos + size > self.heap_end:
                raise PoolCorruptError(
                    f"heap corrupt at {pos}: size={size} status={status:#x} "
                    f"magic={magic:#x}"
                )
            if status == STATUS_FREE:
                self._insert_free(pos, size)
            elif status == STATUS_USED:
                self._used[pos] = size
            else:
                raise PoolCorruptError(f"heap corrupt at {pos}: bad status")
            pos += size

    # ------------------------------------------------------------------ format/rebuild

    @classmethod
    def format(cls, ctx, pool, heap_off: int, heap_size: int) -> "Heap":
        """Format the heap as free space.

        SPMD formats (``ctx.nprocs > 1``) pre-partition it into one free
        region per rank lane, separated by minimal *used* fence blocks, so
        no later allocation ever rewrites a boundary tag inside another
        rank's lane: every split, header pre-image, and undo-log record a
        rank produces involves only offsets its own deterministic
        allocation sequence reaches.  The fences are permanently allocated
        (64 bytes per boundary), which also keeps coalescing from merging
        free space across lanes.  Single-rank formats keep the classic
        one-big-free-block layout.
        """
        heap = cls(pool, heap_off, heap_size)
        spans = heap._lane_spans(getattr(ctx, "nprocs", 1) or 1)
        prev_end = heap_off
        for lo, hi in spans:
            if lo > prev_end:
                heap._write_block(ctx, prev_end, lo - prev_end, STATUS_USED)
                heap._used[prev_end] = lo - prev_end
            heap._write_block(ctx, lo, hi - lo, STATUS_FREE)
            heap._insert_free(lo, hi - lo)
            prev_end = hi
        return heap

    @classmethod
    def rebuild(cls, ctx, pool, heap_off: int, heap_size: int) -> "Heap":
        """Walk headers to reconstruct the volatile free/used maps."""
        heap = cls(pool, heap_off, heap_size)
        pos = heap_off
        while pos < heap.heap_end:
            size, status, magic = heap._read_header(ctx, pos)
            if magic != BLOCK_MAGIC or size < ALIGN or size % ALIGN or \
               pos + size > heap.heap_end:
                raise PoolCorruptError(
                    f"heap corrupt at {pos}: size={size} status={status:#x} "
                    f"magic={magic:#x}"
                )
            if status == STATUS_FREE:
                heap._insert_free(pos, size)
            elif status == STATUS_USED:
                heap._used[pos] = size
            else:
                raise PoolCorruptError(f"heap corrupt at {pos}: bad status")
            pos += size
        return heap

    # ------------------------------------------------------------------ device structs

    def _write_block(self, ctx, off: int, size: int, status: int) -> None:
        """Write footer then header (see module docstring for ordering)."""
        self.pool.write(ctx, off + size - FOOTER_SIZE, _FTR.pack(size))
        self.pool.persist(ctx, off + size - FOOTER_SIZE, FOOTER_SIZE)
        self.pool.write(ctx, off, _HDR.pack(size, status, BLOCK_MAGIC, 0))
        self.pool.persist(ctx, off, HEADER_SIZE)

    def _read_header(self, ctx, off: int) -> tuple[int, int, int]:
        raw = bytes(self.pool.read(ctx, off, HEADER_SIZE))
        size, status, magic, _pad = _HDR.unpack(raw)
        return size, status, magic

    def _read_footer_size(self, ctx, off: int) -> int:
        raw = bytes(self.pool.read(ctx, off - FOOTER_SIZE, FOOTER_SIZE))
        return _FTR.unpack(raw)[0]

    # ------------------------------------------------------------------ volatile maps

    def _insert_free(self, off: int, size: int) -> None:
        self._free[off] = size
        bisect.insort(self._free_sorted, off)

    def _remove_free(self, off: int) -> int:
        size = self._free.pop(off)
        idx = bisect.bisect_left(self._free_sorted, off)
        del self._free_sorted[idx]
        return size

    # ------------------------------------------------------------------ malloc/free

    def _lane_spans(self, nprocs: int) -> list[tuple[int, int]]:
        """Arithmetic partition of the heap into per-rank lanes.

        Every process computes the same spans from ``(heap_size, nprocs)``
        alone — no shared allocator state — so concurrent ranks get
        engine-independent block *addresses* no matter how the thread and
        process engines interleave their mallocs (libpmemobj stripes
        per-thread arenas for the same reason, there for lock contention).
        Lane 0 starts at ``heap_off``; each later lane starts one fence
        block (:data:`ALIGN` bytes) past its boundary — see
        :meth:`format`.  Degenerate partitions collapse to one span.
        """
        if nprocs <= 1:
            return [(self.heap_off, self.heap_end)]
        q = (self.heap_size // nprocs) // ALIGN * ALIGN
        if q < 4 * MIN_BLOCK:  # lanes too small to be useful
            return [(self.heap_off, self.heap_end)]
        spans = []
        for lane in range(nprocs):
            lo = self.heap_off + lane * q + (ALIGN if lane else 0)
            hi = (self.heap_end if lane == nprocs - 1
                  else self.heap_off + (lane + 1) * q)
            spans.append((lo, hi))
        return spans

    def _rank_window(self, ctx) -> tuple[int, int] | None:
        """Deterministic per-rank allocation window for SPMD runs: rank
        ``r`` allocates first-fit inside lane ``r`` and falls back to a
        whole-heap scan only when its lane is exhausted.  Single-rank runs
        use the classic whole-heap first fit."""
        nprocs = getattr(ctx, "nprocs", 1) or 1
        if nprocs <= 1:
            return None
        spans = self._lane_spans(nprocs)
        if len(spans) == 1:
            return None
        return spans[getattr(ctx, "rank", 0) % nprocs]

    def _find_block(self, ctx, total: int) -> tuple[int, int]:
        """Pick a free block and the carve offset inside it for ``total``
        bytes: first fit within the rank's lane window when one applies,
        else (or on lane exhaustion) classic whole-heap first fit."""
        window = self._rank_window(ctx)
        if window is not None:
            lo, hi = window
            for off in self._free_sorted:
                cut = max(off, lo)
                if cut + total <= min(off + self._free[off], hi):
                    return off, cut
        for off in self._free_sorted:
            if self._free[off] >= total:
                return off, off
        raise AllocationError(
            f"out of pool memory: need {total} bytes "
            f"(free: {sum(self._free.values())})"
        )

    def malloc(self, ctx, size: int, tx=None) -> int:
        """Allocate ``size`` user bytes; returns the *user* offset."""
        if size <= 0:
            raise AllocationError(f"invalid allocation size {size}")
        if tx is None:
            from .tx import Transaction

            with Transaction(self.pool, ctx) as itx:
                return self.malloc(ctx, size, tx=itx)
        total = _align(HEADER_SIZE + size + FOOTER_SIZE)
        with self.lock:
            block, cut = self._find_block(ctx, total)
            bsize = self._remove_free(block)
            if tx is not None:
                tx.add_range(block, HEADER_SIZE)
                # the block's footer gets rewritten (as the remainder's or the
                # used block's); log its pre-image so rollback restores the
                # boundary tag exactly
                tx.add_range(block + bsize - FOOTER_SIZE, FOOTER_SIZE)
            head = cut - block
            if head:
                # lane-window carve: the gap before the window boundary
                # stays a standalone free block (any 64-multiple ≥ ALIGN
                # is walk-valid, so no MIN_BLOCK floor here)
                self._write_block(ctx, block, head, STATUS_FREE)
                self._insert_free(block, head)
            remainder = bsize - head - total
            if remainder >= MIN_BLOCK:
                self._write_block(ctx, cut + total, remainder, STATUS_FREE)
                self._insert_free(cut + total, remainder)
            else:
                total += remainder
            self._write_block(ctx, cut, total, STATUS_USED)
            self._used[cut] = total
            if tx is not None:
                # the undo log restores the device image on abort; these
                # mirror that restoration in the volatile maps
                final_total, final_rem, final_head = total, remainder, head
                def _rollback_volatile():
                    with self.lock:
                        self._used.pop(cut, None)
                        if final_head and block in self._free:
                            self._remove_free(block)
                        if final_rem >= MIN_BLOCK and (cut + final_total) in self._free:
                            self._remove_free(cut + final_total)
                        self._insert_free(block, bsize)
                tx.on_abort(_rollback_volatile)
            return cut + HEADER_SIZE

    def free(self, ctx, user_off: int, tx=None) -> None:
        if tx is None:
            from .tx import Transaction

            with Transaction(self.pool, ctx) as itx:
                return self.free(ctx, user_off, tx=itx)
        block = user_off - HEADER_SIZE
        with self.lock:
            size = self._used.get(block)
            if size is None:
                raise AllocationError(f"free of unallocated offset {user_off}")
            # sanity-check the on-device header
            dsize, status, magic = self._read_header(ctx, block)
            if (dsize, status, magic) != (size, STATUS_USED, BLOCK_MAGIC):
                raise PoolCorruptError(
                    f"header mismatch freeing {user_off}: device says "
                    f"size={dsize} status={status:#x}"
                )
            if tx is not None:
                tx.add_range(block, HEADER_SIZE)
            del self._used[block]
            start, total = block, size
            # coalesce with next
            nxt = block + size
            if nxt < self.heap_end and nxt in self._free:
                if tx is not None:
                    tx.add_range(nxt, HEADER_SIZE)
                total += self._remove_free(nxt)
            # coalesce with previous
            if start > self.heap_off:
                prev_size = self._read_footer_size(ctx, start)
                prev = start - prev_size
                if prev in self._free:
                    if tx is not None:
                        tx.add_range(prev, HEADER_SIZE)
                    self._remove_free(prev)
                    start = prev
                    total += prev_size
            if tx is not None:
                # final merged footer overwrites some block's old footer
                tx.add_range(start + total - FOOTER_SIZE, FOOTER_SIZE)
            self._write_block(ctx, start, total, STATUS_FREE)
            self._insert_free(start, total)
            if tx is not None:
                snap_start, snap_total, snap_block, snap_size = start, total, block, size
                def _rollback_volatile():
                    with self.lock:
                        if snap_start in self._free:
                            self._remove_free(snap_start)
                        # restore the freed block as used
                        self._used[snap_block] = snap_size
                        # restore neighbor free blocks exactly as they were
                        if snap_start != snap_block:
                            prev_sz = snap_block - snap_start
                            self._insert_free(snap_start, prev_sz)
                        tail = snap_block + snap_size
                        if tail < snap_start + snap_total:
                            self._insert_free(tail, snap_start + snap_total - tail)
                tx.on_abort(_rollback_volatile)

    def usable_size(self, user_off: int) -> int:
        with self.lock:
            size = self._used.get(user_off - HEADER_SIZE)
            if size is None:
                raise AllocationError(f"unallocated offset {user_off}")
            return size - HEADER_SIZE - FOOTER_SIZE

    # ------------------------------------------------------------------ stats

    def free_bytes(self) -> int:
        with self.lock:
            return sum(self._free.values())

    def used_bytes(self) -> int:
        with self.lock:
            return sum(self._used.values())

    def n_free_blocks(self) -> int:
        with self.lock:
            return len(self._free)

    def largest_free_block(self) -> int:
        with self.lock:
            return max(self._free.values(), default=0)

    def check_invariants(self) -> None:
        """Test helper: free/used blocks tile the heap exactly."""
        with self.lock:
            blocks = sorted(
                [(o, s, "free") for o, s in self._free.items()]
                + [(o, s, "used") for o, s in self._used.items()]
            )
            pos = self.heap_off
            prev_kind = None
            for off, size, kind in blocks:
                if off != pos:
                    raise AssertionError(f"gap/overlap at {pos} (next block {off})")
                if kind == "free" and prev_kind == "free":
                    raise AssertionError(f"uncoalesced free blocks at {off}")
                pos = off + size
                prev_kind = kind
            if pos != self.heap_end:
                raise AssertionError(f"heap ends at {pos}, expected {self.heap_end}")
