"""Persistent heap: boundary-tag allocator with volatile free lists.

On-device block format (all blocks 64-byte aligned)::

    [ header 16B | user data ... | footer 8B ]

    header:  size u64 (total block size)    status u32    magic u16  pad u16
    footer:  size u64

The *free lists are volatile* (a dict + sorted offset list in DRAM) and are
rebuilt at pool open by walking the headers — exactly PMDK's strategy of
reconstructing runtime heap state instead of persisting it.  Block headers
and footers on the device are the durable truth.

Boundary-tag updates are crash-atomic via the undo log: a split or a
coalesce rewrites a header and a *different* block's footer, and no write
ordering keeps the walk invariant (footer agrees with its covering header)
intact between those two stores — the crash-state enumerator readily finds
the torn window.  So malloc/free log the affected tags before mutating:
inside the caller's transaction when one is passed, otherwise inside an
internal single-op transaction (PMDK's non-transactional atomic
allocations use the same trick with redo logs).
"""

from __future__ import annotations

import bisect
import struct
import threading

from ..errors import AllocationError, PoolCorruptError

HEADER_SIZE = 16
FOOTER_SIZE = 8
ALIGN = 64
#: smallest block we bother splitting off as a remainder
MIN_BLOCK = 128

STATUS_FREE = 0xF1EE0001
STATUS_USED = 0xA1100001
BLOCK_MAGIC = 0x504D  # "PM"

_HDR = struct.Struct("<QIHH")
_FTR = struct.Struct("<Q")


def _align(n: int) -> int:
    return -(-n // ALIGN) * ALIGN


class Heap:
    """Allocator over ``[heap_off, heap_off + heap_size)`` of a pool."""

    def __init__(self, pool, heap_off: int, heap_size: int):
        self.pool = pool
        self.heap_off = heap_off
        self.heap_size = heap_size // ALIGN * ALIGN
        self.heap_end = heap_off + self.heap_size
        self.lock = threading.RLock()
        self._free: dict[int, int] = {}      # block off -> total size
        self._free_sorted: list[int] = []    # offsets, ascending
        self._used: dict[int, int] = {}      # block off -> total size

    # ------------------------------------------------------------------ format/rebuild

    @classmethod
    def format(cls, ctx, pool, heap_off: int, heap_size: int) -> "Heap":
        heap = cls(pool, heap_off, heap_size)
        heap._write_block(ctx, heap_off, heap.heap_size, STATUS_FREE)
        heap._insert_free(heap_off, heap.heap_size)
        return heap

    @classmethod
    def rebuild(cls, ctx, pool, heap_off: int, heap_size: int) -> "Heap":
        """Walk headers to reconstruct the volatile free/used maps."""
        heap = cls(pool, heap_off, heap_size)
        pos = heap_off
        while pos < heap.heap_end:
            size, status, magic = heap._read_header(ctx, pos)
            if magic != BLOCK_MAGIC or size < ALIGN or size % ALIGN or \
               pos + size > heap.heap_end:
                raise PoolCorruptError(
                    f"heap corrupt at {pos}: size={size} status={status:#x} "
                    f"magic={magic:#x}"
                )
            if status == STATUS_FREE:
                heap._insert_free(pos, size)
            elif status == STATUS_USED:
                heap._used[pos] = size
            else:
                raise PoolCorruptError(f"heap corrupt at {pos}: bad status")
            pos += size
        return heap

    # ------------------------------------------------------------------ device structs

    def _write_block(self, ctx, off: int, size: int, status: int) -> None:
        """Write footer then header (see module docstring for ordering)."""
        self.pool.write(ctx, off + size - FOOTER_SIZE, _FTR.pack(size))
        self.pool.persist(ctx, off + size - FOOTER_SIZE, FOOTER_SIZE)
        self.pool.write(ctx, off, _HDR.pack(size, status, BLOCK_MAGIC, 0))
        self.pool.persist(ctx, off, HEADER_SIZE)

    def _read_header(self, ctx, off: int) -> tuple[int, int, int]:
        raw = bytes(self.pool.read(ctx, off, HEADER_SIZE))
        size, status, magic, _pad = _HDR.unpack(raw)
        return size, status, magic

    def _read_footer_size(self, ctx, off: int) -> int:
        raw = bytes(self.pool.read(ctx, off - FOOTER_SIZE, FOOTER_SIZE))
        return _FTR.unpack(raw)[0]

    # ------------------------------------------------------------------ volatile maps

    def _insert_free(self, off: int, size: int) -> None:
        self._free[off] = size
        bisect.insort(self._free_sorted, off)

    def _remove_free(self, off: int) -> int:
        size = self._free.pop(off)
        idx = bisect.bisect_left(self._free_sorted, off)
        del self._free_sorted[idx]
        return size

    # ------------------------------------------------------------------ malloc/free

    def malloc(self, ctx, size: int, tx=None) -> int:
        """Allocate ``size`` user bytes; returns the *user* offset."""
        if size <= 0:
            raise AllocationError(f"invalid allocation size {size}")
        if tx is None:
            from .tx import Transaction

            with Transaction(self.pool, ctx) as itx:
                return self.malloc(ctx, size, tx=itx)
        total = _align(HEADER_SIZE + size + FOOTER_SIZE)
        with self.lock:
            block = None
            for off in self._free_sorted:
                if self._free[off] >= total:
                    block = off
                    break
            if block is None:
                raise AllocationError(
                    f"out of pool memory: need {total} bytes "
                    f"(free: {sum(self._free.values())})"
                )
            bsize = self._remove_free(block)
            if tx is not None:
                tx.add_range(block, HEADER_SIZE)
                # the block's footer gets rewritten (as the remainder's or the
                # used block's); log its pre-image so rollback restores the
                # boundary tag exactly
                tx.add_range(block + bsize - FOOTER_SIZE, FOOTER_SIZE)
            remainder = bsize - total
            if remainder >= MIN_BLOCK:
                self._write_block(ctx, block + total, remainder, STATUS_FREE)
                self._insert_free(block + total, remainder)
            else:
                total = bsize
            self._write_block(ctx, block, total, STATUS_USED)
            self._used[block] = total
            if tx is not None:
                # the undo log restores the device image on abort; these
                # mirror that restoration in the volatile maps
                final_total, final_rem = total, remainder
                def _rollback_volatile():
                    with self.lock:
                        self._used.pop(block, None)
                        if final_rem >= MIN_BLOCK and (block + final_total) in self._free:
                            self._remove_free(block + final_total)
                        self._insert_free(block, bsize)
                tx.on_abort(_rollback_volatile)
            return block + HEADER_SIZE

    def free(self, ctx, user_off: int, tx=None) -> None:
        if tx is None:
            from .tx import Transaction

            with Transaction(self.pool, ctx) as itx:
                return self.free(ctx, user_off, tx=itx)
        block = user_off - HEADER_SIZE
        with self.lock:
            size = self._used.get(block)
            if size is None:
                raise AllocationError(f"free of unallocated offset {user_off}")
            # sanity-check the on-device header
            dsize, status, magic = self._read_header(ctx, block)
            if (dsize, status, magic) != (size, STATUS_USED, BLOCK_MAGIC):
                raise PoolCorruptError(
                    f"header mismatch freeing {user_off}: device says "
                    f"size={dsize} status={status:#x}"
                )
            if tx is not None:
                tx.add_range(block, HEADER_SIZE)
            del self._used[block]
            start, total = block, size
            # coalesce with next
            nxt = block + size
            if nxt < self.heap_end and nxt in self._free:
                if tx is not None:
                    tx.add_range(nxt, HEADER_SIZE)
                total += self._remove_free(nxt)
            # coalesce with previous
            if start > self.heap_off:
                prev_size = self._read_footer_size(ctx, start)
                prev = start - prev_size
                if prev in self._free:
                    if tx is not None:
                        tx.add_range(prev, HEADER_SIZE)
                    self._remove_free(prev)
                    start = prev
                    total += prev_size
            if tx is not None:
                # final merged footer overwrites some block's old footer
                tx.add_range(start + total - FOOTER_SIZE, FOOTER_SIZE)
            self._write_block(ctx, start, total, STATUS_FREE)
            self._insert_free(start, total)
            if tx is not None:
                snap_start, snap_total, snap_block, snap_size = start, total, block, size
                def _rollback_volatile():
                    with self.lock:
                        if snap_start in self._free:
                            self._remove_free(snap_start)
                        # restore the freed block as used
                        self._used[snap_block] = snap_size
                        # restore neighbor free blocks exactly as they were
                        if snap_start != snap_block:
                            prev_sz = snap_block - snap_start
                            self._insert_free(snap_start, prev_sz)
                        tail = snap_block + snap_size
                        if tail < snap_start + snap_total:
                            self._insert_free(tail, snap_start + snap_total - tail)
                tx.on_abort(_rollback_volatile)

    def usable_size(self, user_off: int) -> int:
        with self.lock:
            size = self._used.get(user_off - HEADER_SIZE)
            if size is None:
                raise AllocationError(f"unallocated offset {user_off}")
            return size - HEADER_SIZE - FOOTER_SIZE

    # ------------------------------------------------------------------ stats

    def free_bytes(self) -> int:
        with self.lock:
            return sum(self._free.values())

    def used_bytes(self) -> int:
        with self.lock:
            return sum(self._used.values())

    def n_free_blocks(self) -> int:
        with self.lock:
            return len(self._free)

    def largest_free_block(self) -> int:
        with self.lock:
            return max(self._free.values(), default=0)

    def check_invariants(self) -> None:
        """Test helper: free/used blocks tile the heap exactly."""
        with self.lock:
            blocks = sorted(
                [(o, s, "free") for o, s in self._free.items()]
                + [(o, s, "used") for o, s in self._used.items()]
            )
            pos = self.heap_off
            prev_kind = None
            for off, size, kind in blocks:
                if off != pos:
                    raise AssertionError(f"gap/overlap at {pos} (next block {off})")
                if kind == "free" and prev_kind == "free":
                    raise AssertionError(f"uncoalesced free blocks at {off}")
                pos = off + size
                prev_kind = kind
            if pos != self.heap_end:
                raise AssertionError(f"heap ends at {pos}, expected {self.heap_end}")
