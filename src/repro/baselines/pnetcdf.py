"""pNetCDF-like library: CDF-style header + contiguous variables +
collective MPI-IO, independent of the HDF5 substrate (as the real pNetCDF
is).  Same define/data-mode split as NetCDF-3::

    f = PnetcdfFile(ctx, comm, path, "w")
    f.def_dim("x", n); f.def_var("A", float64, ("x",))
    f.enddef()                      # computes variable begins, writes header
    f.put_vara_all(ctx, "A", start, count, data)
    f.close()

Variables are stored contiguously in global row-major order right after a
fixed header block, so parallel block writes decompose into strided runs
and take the same two-phase rearrangement path as NetCDF-4 — matching the
paper's observation that the two perform alike (§4.1).
"""

from __future__ import annotations

import math
import struct

import numpy as np

from ..errors import BaselineError, FormatError
from ..kernel.vfs import OpenFlags
from ..mem.memcpy import charge_cpu, charge_dram_copy
from ..mpi.datatypes import subarray_run_starts, subarray_runs
from ..serial.base import dtype_from_token, dtype_to_token
from .base import PIODriver, register_driver

MAGIC = b"CDFS"
_HEADER_BLOCK = 8192
CONVERT_BW = 2.2


class PnetcdfFile:
    def __init__(self, ctx, comm, path: str, mode: str):
        from ..mpi.io import MPIFile

        self.ctx = ctx
        self.comm = comm
        self.mode = mode
        self.defining = mode == "w"
        self.dims: dict[str, int] = {}
        #: name -> (dtype, dim names, begin offset)
        self.vars: dict[str, tuple[np.dtype, tuple[str, ...], int]] = {}
        flags = (
            OpenFlags.CREAT | OpenFlags.RDWR | OpenFlags.TRUNC
            if mode == "w" else OpenFlags.RDWR
        )
        self.file = MPIFile.open(ctx, comm, ctx.env.vfs, path, flags)
        if mode == "r":
            self._read_header(ctx)
            self.defining = False

    # ------------------------------------------------------------------ define mode

    def _require_define(self):
        if not self.defining:
            raise BaselineError("not in define mode")

    def def_dim(self, name: str, size: int) -> str:
        self._require_define()
        self.dims[name] = int(size)
        return name

    def def_var(self, name: str, dtype, dim_names) -> str:
        self._require_define()
        if name in self.vars:
            raise BaselineError(f"variable {name!r} redefined")
        self.vars[name] = (np.dtype(dtype), tuple(dim_names), 0)
        return name

    def enddef(self, ctx) -> None:
        """Freeze the schema: assign begins and write the header."""
        self._require_define()
        begin = _HEADER_BLOCK
        for name, (dtype, dim_names, _b) in list(self.vars.items()):
            self.vars[name] = (dtype, dim_names, begin)
            nbytes = math.prod(self.dims[d] for d in dim_names) * dtype.itemsize
            begin += nbytes
        if self.comm.rank == 0:
            self.file.write_at(ctx, 0, np.frombuffer(self._pack_header(), np.uint8))
        self.comm.barrier()
        self.defining = False

    def _pack_header(self) -> bytes:
        parts = [MAGIC, struct.pack("<II", len(self.dims), len(self.vars))]
        for name, size in self.dims.items():
            nb = name.encode()
            parts.append(struct.pack("<H", len(nb)) + nb + struct.pack("<Q", size))
        for name, (dtype, dim_names, begin) in self.vars.items():
            nb = name.encode()
            dt = dtype_to_token(dtype).encode()
            parts.append(struct.pack("<H", len(nb)) + nb)
            parts.append(struct.pack("<H", len(dt)) + dt)
            parts.append(struct.pack("<H", len(dim_names)))
            for d in dim_names:
                db = d.encode()
                parts.append(struct.pack("<H", len(db)) + db)
            parts.append(struct.pack("<Q", begin))
        raw = b"".join(parts)
        if len(raw) > _HEADER_BLOCK:
            raise FormatError("header exceeds reserved block")
        return raw + bytes(_HEADER_BLOCK - len(raw))

    def _read_header(self, ctx) -> None:
        if self.comm.rank == 0:
            raw = self.file.read_at(ctx, 0, _HEADER_BLOCK).tobytes()
        else:
            raw = None
        raw = self.comm.bcast(raw, root=0)
        if raw[:4] != MAGIC:
            raise FormatError("not a pnetcdf-sim file")
        ndims, nvars = struct.unpack_from("<II", raw, 4)
        pos = 12
        for _ in range(ndims):
            (nlen,) = struct.unpack_from("<H", raw, pos); pos += 2
            name = raw[pos : pos + nlen].decode(); pos += nlen
            (size,) = struct.unpack_from("<Q", raw, pos); pos += 8
            self.dims[name] = size
        for _ in range(nvars):
            (nlen,) = struct.unpack_from("<H", raw, pos); pos += 2
            name = raw[pos : pos + nlen].decode(); pos += nlen
            (dlen,) = struct.unpack_from("<H", raw, pos); pos += 2
            dtype = dtype_from_token(raw[pos : pos + dlen].decode()); pos += dlen
            (nd,) = struct.unpack_from("<H", raw, pos); pos += 2
            dim_names = []
            for _ in range(nd):
                (l,) = struct.unpack_from("<H", raw, pos); pos += 2
                dim_names.append(raw[pos : pos + l].decode()); pos += l
            (begin,) = struct.unpack_from("<Q", raw, pos); pos += 8
            self.vars[name] = (dtype, tuple(dim_names), begin)

    # ------------------------------------------------------------------ data mode

    def _var(self, name: str):
        try:
            dtype, dim_names, begin = self.vars[name]
        except KeyError:
            raise FormatError(f"no variable {name!r}") from None
        shape = tuple(self.dims[d] for d in dim_names)
        return dtype, shape, begin

    def put_vara_all(self, ctx, name: str, start, count, data) -> None:
        if self.defining:
            raise BaselineError("still in define mode — call enddef()")
        dtype, shape, begin = self._var(name)
        data = np.ascontiguousarray(data, dtype=dtype)
        charge_cpu(ctx, ctx.model_bytes(data.nbytes), CONVERT_BW, note="nc-pack")
        charge_dram_copy(ctx, ctx.model_bytes(data.nbytes), note="stage-copy")
        starts = subarray_run_starts(shape, start, count, dtype.itemsize)
        _n, run_bytes = subarray_runs(shape, start, count, dtype.itemsize)
        flat = data.reshape(-1).view(np.uint8)
        extents = [
            (begin + int(s), flat[i * run_bytes : (i + 1) * run_bytes])
            for i, s in enumerate(starts)
        ]
        self.file.write_at_all(ctx, extents)

    def get_vara_all(self, ctx, name: str, start, count) -> np.ndarray:
        if self.defining:
            raise BaselineError("still in define mode — call enddef()")
        dtype, shape, begin = self._var(name)
        starts = subarray_run_starts(shape, start, count, dtype.itemsize)
        _n, run_bytes = subarray_runs(shape, start, count, dtype.itemsize)
        reqs = [(begin + int(s), run_bytes) for s in starts]
        runs = self.file.read_at_all(ctx, reqs)
        flat = np.concatenate(runs) if runs else np.empty(0, np.uint8)
        out = np.frombuffer(flat.tobytes(), dtype=dtype).reshape(tuple(count))
        charge_cpu(ctx, ctx.model_bytes(out.nbytes), CONVERT_BW, note="nc-unpack")
        return out

    def get_vars_all(self, ctx, name: str, selection) -> np.ndarray:
        """ncmpi_get_vars-style strided/point read: the selection's row
        segments become MPI-IO extents over the variable's contiguous
        global layout — only selected bytes are requested."""
        if self.defining:
            raise BaselineError("still in define mode — call enddef()")
        dtype, shape, begin = self._var(name)
        itemsize = dtype.itemsize
        origin = tuple(0 for _ in shape)
        runs = list(selection.runs(origin, shape))
        reqs = [
            (begin + r.src * itemsize, r.nelems * itemsize) for r in runs
        ]
        got = self.file.read_at_all(ctx, reqs)
        out = np.empty(selection.out_shape, dtype=dtype)
        flat = out.reshape(-1)
        for r, raw in zip(runs, got):
            flat[r.dst : r.dst + r.nelems] = np.frombuffer(
                raw.tobytes(), dtype=dtype)
        charge_cpu(ctx, ctx.model_bytes(out.nbytes), CONVERT_BW, note="nc-unpack")
        return out

    def close(self, ctx) -> None:
        self.file.close(ctx)


@register_driver
class PnetcdfDriver(PIODriver):
    name = "pnetcdf"

    def __init__(self):
        self.f: PnetcdfFile | None = None
        self._defined = False

    def open(self, ctx, comm, path: str, mode: str) -> None:
        with self.op_span(ctx, "open", mode=mode):
            self.f = PnetcdfFile(ctx, comm, path, mode)
            self._defined = mode == "r"

    def def_var(self, ctx, name: str, global_dims, dtype) -> None:
        with self.op_span(ctx, "define", var=name):
            dim_names = [
                self.f.def_dim(f"{name}_d{i}", d)
                for i, d in enumerate(global_dims)
            ]
            self.f.def_var(name, dtype, dim_names)

    def write(self, ctx, name: str, array: np.ndarray, offsets) -> None:
        with self.write_op(ctx, name, array):
            if not self._defined:
                self.f.enddef(ctx)
                self._defined = True
            self.f.put_vara_all(ctx, name, offsets, array.shape, array)

    def read(self, ctx, name: str, offsets, dims) -> np.ndarray:
        with self.read_op(ctx, name) as op:
            out = self.f.get_vara_all(ctx, name, offsets, dims)
            op.done(out)
            return out

    def read_selection(self, ctx, name: str, selection) -> np.ndarray:
        with self.read_op(ctx, name) as op:
            out = self.f.get_vars_all(ctx, name, selection)
            op.done(out)
            return out

    def close(self, ctx) -> None:
        with self.op_span(ctx, "close"):
            if not self._defined and self.f.mode == "w":
                self.f.enddef(ctx)
            self.f.close(ctx)
            self.f = None
