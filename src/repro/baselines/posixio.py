"""Plain POSIX baseline: raw per-rank blocks behind a tiny binary index.

No serialization format, no rearrangement — each rank ``pwrite``s its block
to a deterministic region of the shared file.  This is the floor every
library's overhead is measured against; it still pays the kernel copy path
that pMEMCPY's mmap avoids.

File layout::

    0:      index_off u64   (patched at close by rank 0)
    8:      data blocks (per write call: rank blocks back to back)
    index:  count u32, then per record:
            name_len u16 | name | dtype_len u16 | dtype token |
            ndims u16 | offsets ndims×u64 | dims ndims×u64 |
            file_off u64 | nbytes u64
"""

from __future__ import annotations

import struct

import numpy as np

from ..errors import BaselineError, FormatError
from ..kernel.vfs import OpenFlags
from ..serial.base import dtype_from_token, dtype_to_token
from .base import PIODriver, register_driver

_MAGIC_OFF = 0
_DATA_START = 8


def _pack_record(rec: dict) -> bytes:
    name = rec["name"].encode()
    dt = dtype_to_token(rec["dtype"]).encode()
    nd = len(rec["offsets"])
    return b"".join([
        struct.pack("<H", len(name)), name,
        struct.pack("<H", len(dt)), dt,
        struct.pack("<H", nd),
        struct.pack(f"<{nd}Q", *rec["offsets"]),
        struct.pack(f"<{nd}Q", *rec["dims"]),
        struct.pack("<QQ", rec["file_off"], rec["nbytes"]),
    ])


def _unpack_records(raw: bytes) -> list[dict]:
    (count,) = struct.unpack_from("<I", raw, 0)
    pos = 4
    out = []
    for _ in range(count):
        (nlen,) = struct.unpack_from("<H", raw, pos); pos += 2
        name = raw[pos : pos + nlen].decode(); pos += nlen
        (dlen,) = struct.unpack_from("<H", raw, pos); pos += 2
        dtype = dtype_from_token(raw[pos : pos + dlen].decode()); pos += dlen
        (nd,) = struct.unpack_from("<H", raw, pos); pos += 2
        offsets = struct.unpack_from(f"<{nd}Q", raw, pos); pos += 8 * nd
        dims = struct.unpack_from(f"<{nd}Q", raw, pos); pos += 8 * nd
        file_off, nbytes = struct.unpack_from("<QQ", raw, pos); pos += 16
        out.append({
            "name": name, "dtype": dtype, "offsets": offsets,
            "dims": dims, "file_off": file_off, "nbytes": nbytes,
        })
    return out


@register_driver
class PosixDriver(PIODriver):
    name = "posix"

    def __init__(self):
        self.file = None
        self.mode = ""
        self.comm = None
        self._eof = _DATA_START
        self._records: list[dict] = []  # this rank's writes
        self._index: list[dict] = []    # read mode: all records
        self._vars: dict[str, tuple] = {}

    def open(self, ctx, comm, path: str, mode: str) -> None:
        from ..mpi.io import MPIFile

        with self.op_span(ctx, "open", mode=mode):
            self.comm = comm
            self.mode = mode
            flags = (
                OpenFlags.CREAT | OpenFlags.RDWR | OpenFlags.TRUNC
                if mode == "w" else OpenFlags.RDWR
            )
            self.file = MPIFile.open(ctx, comm, ctx.env.vfs, path, flags)
            if mode == "r":
                if comm.rank == 0:
                    hdr = self.file.read_at(ctx, _MAGIC_OFF, 8)
                    (index_off,) = struct.unpack("<Q", hdr.tobytes())
                    size = ctx.env.vfs.fstat(ctx, self.file.fd)["size"]
                    raw = self.file.read_at(
                        ctx, index_off, size - index_off).tobytes()
                    index = _unpack_records(raw)
                else:
                    index = None
                self._index = comm.bcast(index, root=0)

    def def_var(self, ctx, name: str, global_dims, dtype) -> None:
        with self.op_span(ctx, "define", var=name):
            self._vars[name] = (tuple(global_dims), np.dtype(dtype))

    def write(self, ctx, name: str, array: np.ndarray, offsets) -> None:
        if self.mode != "w":
            raise BaselineError("file opened read-only")
        with self.write_op(ctx, name, array):
            # deterministic region allocation: everyone learns all sizes
            sizes = self.comm.allgather(int(array.nbytes))
            base = self._eof
            my_off = base + sum(sizes[: self.comm.rank])
            self._eof = base + sum(sizes)
            self.file.write_at(
                ctx, my_off, array, model_bytes=ctx.model_bytes(array.nbytes)
            )
            self._records.append({
                "name": name, "dtype": array.dtype,
                "offsets": tuple(offsets), "dims": tuple(array.shape),
                "file_off": my_off, "nbytes": int(array.nbytes),
            })

    def read(self, ctx, name: str, offsets, dims) -> np.ndarray:
        with self.read_op(ctx, name) as op:
            recs = [
                r for r in self._index
                if r["name"] == name and _intersects(r, offsets, dims)
            ]
            if not recs:
                raise FormatError(f"variable {name!r} block not found in index")
            dtype = recs[0]["dtype"]
            out = np.zeros(tuple(dims), dtype=dtype)
            for r in recs:
                raw = self.file.read_at(
                    ctx, r["file_off"], r["nbytes"],
                    model_bytes=ctx.model_bytes(r["nbytes"]),
                )
                block = raw.tobytes()
                arr = np.frombuffer(block, dtype=dtype).reshape(r["dims"])
                _paste(out, offsets, dims, arr, r["offsets"], r["dims"])
            op.done(out)
            return out

    def close(self, ctx) -> None:
        with self.op_span(ctx, "close"):
            self._close(ctx)

    def _close(self, ctx) -> None:
        metas = self.comm.gather(self._records, root=0)
        if self.comm.rank == 0 and self.mode == "w":
            all_recs = [r for sub in metas for r in sub]
            raw = struct.pack("<I", len(all_recs)) + b"".join(
                _pack_record(r) for r in all_recs
            )
            self.file.write_at(ctx, self._eof, np.frombuffer(raw, np.uint8))
            self.file.write_at(ctx, _MAGIC_OFF, struct.pack("<Q", self._eof))
        self.file.close(ctx)


def _intersects(rec: dict, offsets, dims) -> bool:
    for ro, rd, o, d in zip(rec["offsets"], rec["dims"], offsets, dims):
        if ro + rd <= o or o + d <= ro:
            return False
    return True


def _paste(out, out_off, out_dims, block, blk_off, blk_dims) -> None:
    """Copy the intersection of ``block`` into ``out`` (global coords)."""
    lo = tuple(max(a, b) for a, b in zip(out_off, blk_off))
    hi = tuple(
        min(a + da, b + db)
        for a, da, b, db in zip(out_off, out_dims, blk_off, blk_dims)
    )
    src = tuple(slice(l - b, h - b) for l, h, b in zip(lo, hi, blk_off))
    dst = tuple(slice(l - a, h - a) for l, h, a in zip(lo, hi, out_off))
    out[dst] = block[src]
