"""ADIOS-like library: process-group BP output, no data rearrangement.

The behaviors that matter for Figs. 6–7 (§2.1, §4.1):

- each process writes the data it owns *in the format it was produced* —
  no all-to-all rearrangement, no global linearization;
- but variables are first serialized into a DRAM staging buffer and only
  shipped to storage through POSIX ``write`` at close — one staging copy
  plus the kernel copy path that pMEMCPY avoids;
- reads fetch a process-group record into DRAM and deserialize from there —
  an extra PMEM→DRAM copy before the unpack pass (the 2× read gap).

File layout::

    0:  magic u32 "ADB4" | index_off u64   (patched at close)
    16: process-group regions, rank-ordered per output step
    index: count u32, then per record:
           name | dtype | offsets | dims (as posixio records) |
           abs_off u64 | length u64   (of the BP4 record)
"""

from __future__ import annotations

import struct

import numpy as np

from ..errors import BaselineError, FormatError
from ..kernel.vfs import OpenFlags
from ..serial import BP4Serializer, DramSink, DramSource
from .base import PIODriver, register_driver
from .posixio import _pack_record, _unpack_records, _intersects, _paste

MAGIC = 0x41444234  # "ADB4"
_DATA_START = 16


class AdiosFile:
    """Native-feeling ADIOS handle (adios_open/write/close).

    ``aggregation=k`` enables the MPI_AGGREGATE-style transport: process
    groups are shipped to ``k`` aggregator ranks which write fewer, larger
    regions — the classic PFS optimization.  On per-process-friendly PMEM
    it *reduces* device parallelism (see the aggregation ablation).
    """

    def __init__(self, ctx, comm, path: str, mode: str,
                 aggregation: int | None = None):
        from ..mpi.io import MPIFile

        self.ctx = ctx
        self.comm = comm
        self.mode = mode
        self.aggregation = aggregation
        self.serializer = BP4Serializer()
        self._pending: list[tuple[str, np.ndarray, tuple, tuple]] = []
        self._index: list[dict] = []
        self._eof = _DATA_START
        flags = (
            OpenFlags.CREAT | OpenFlags.RDWR | OpenFlags.TRUNC
            if mode == "w" else OpenFlags.RDWR
        )
        self.file = MPIFile.open(ctx, comm, ctx.env.vfs, path, flags)
        if mode == "r":
            if comm.rank == 0:
                hdr = self.file.read_at(ctx, 0, 16).tobytes()
                magic, index_off = struct.unpack("<IxxxxQ", hdr)
                if magic != MAGIC:
                    raise FormatError("not an ADIOS-BP4 file")
                size = ctx.env.vfs.fstat(ctx, self.file.fd)["size"]
                raw = self.file.read_at(ctx, index_off, size - index_off).tobytes()
                index = _unpack_records(raw)
            else:
                index = None
            self._index = comm.bcast(index, root=0)

    # ------------------------------------------------------------------ write

    def write(self, name: str, array: np.ndarray, offsets=None, global_dims=None) -> None:
        """adios_write: buffer the variable for the PG flush at close."""
        if self.mode != "w":
            raise BaselineError("file opened read-only")
        array = np.asarray(array)
        offs = tuple(offsets) if offsets is not None else tuple(0 for _ in array.shape)
        gdims = tuple(global_dims) if global_dims is not None else tuple(array.shape)
        self._pending.append((name, array, offs, gdims))

    def _flush_pg(self, ctx) -> list[dict]:
        """Serialize this rank's process group into DRAM and POSIX-write it."""
        sink = DramSink(ctx)
        positions = []
        for name, array, offs, _gdims in self._pending:
            start = sink.tell()
            self.serializer.pack(ctx, name, array, sink)
            positions.append((name, array, offs, start, sink.tell() - start))
        pg = sink.getvalue()
        sizes = self.comm.allgather(len(pg))
        my_off = self._eof + sum(sizes[: self.comm.rank])
        naggr = self.aggregation
        if naggr and naggr < self.comm.size:
            # N:M aggregation: contiguous rank groups ship their PGs to the
            # group's first rank, which writes one large region
            size = self.comm.size
            group = self.comm.rank * naggr // size
            leader = -(-group * size // naggr)  # first rank of the group
            send: list = [None] * size
            send[leader] = pg
            incoming = self.comm.alltoall(send)
            my_group = [
                r for r in range(size) if r * naggr // size == group
            ]
            if self.comm.rank == leader:
                blob = b"".join(incoming[r] or b"" for r in my_group)
                base = self._eof + sum(sizes[: my_group[0]])
                if blob:
                    self.file.write_at(
                        ctx, base, np.frombuffer(blob, np.uint8),
                        model_bytes=ctx.model_bytes(len(blob)),
                    )
        elif pg:
            self.file.write_at(
                ctx, my_off,
                np.frombuffer(pg, np.uint8),
                model_bytes=ctx.model_bytes(len(pg)),
            )
        self._eof += sum(sizes)
        return [
            {
                "name": name, "dtype": array.dtype,
                "offsets": offs, "dims": tuple(array.shape),
                "file_off": my_off + start, "nbytes": length,
            }
            for name, array, offs, start, length in positions
        ]

    # ------------------------------------------------------------------ inquiry

    def available_variables(self) -> list[str]:
        """Variable names present in the BP index (no data reads)."""
        return sorted({r["name"] for r in self._index})

    def inquire(self, name: str) -> list[dict]:
        """BP's lightweight data characterization: per-block metadata
        (offsets, dims, min/max) read from each record's *header only* —
        no payload traffic.  This is the 'read the stats, skip the data'
        pattern ADIOS queries use."""
        ctx = self.ctx
        out = []
        for r in self._index:
            if r["name"] != name:
                continue
            # a BP4 record header is well under 4 KiB
            head = self.file.read_at(
                ctx, r["file_off"], min(r["nbytes"], 4096),
                model_bytes=min(r["nbytes"], 4096),
            )
            chars = self.serializer.read_characteristics(
                ctx, DramSource(ctx, head)
            )
            out.append({
                "offsets": tuple(r["offsets"]),
                "dims": tuple(r["dims"]),
                "min": chars["min"],
                "max": chars["max"],
            })
        if not out:
            raise FormatError(f"variable {name!r} not in BP index")
        return out

    # ------------------------------------------------------------------ read

    def read(self, name: str, offsets, dims) -> np.ndarray:
        ctx = self.ctx
        recs = [
            r for r in self._index
            if r["name"] == name and _intersects(r, offsets, dims)
        ]
        if not recs:
            raise FormatError(f"variable {name!r} block not in BP index")
        out = np.zeros(tuple(dims), dtype=recs[0]["dtype"])
        for r in recs:
            raw = self.file.read_at(
                ctx, r["file_off"], r["nbytes"],
                model_bytes=ctx.model_bytes(r["nbytes"]),
            )
            _rname, arr = self.serializer.unpack(ctx, DramSource(ctx, raw))
            arr = arr.reshape(r["dims"])
            _paste(out, tuple(offsets), tuple(dims), arr, r["offsets"], r["dims"])
            # §4.1: "ADIOS requires the serialized data to be copied from
            # PMEM into DRAM and then deserialized into ANOTHER DRAM
            # buffer" — the second buffer write is this copy
            from ..mem.memcpy import charge_dram_copy

            charge_dram_copy(ctx, ctx.model_bytes(arr.nbytes), note="stage-copy")
        return out

    # ------------------------------------------------------------------ close

    def close(self) -> None:
        ctx = self.ctx
        if self.mode == "w":
            records = self._flush_pg(ctx)
            metas = self.comm.gather(records, root=0)
            if self.comm.rank == 0:
                all_recs = [r for sub in metas for r in sub]
                raw = struct.pack("<I", len(all_recs)) + b"".join(
                    _pack_record(r) for r in all_recs
                )
                self.file.write_at(ctx, self._eof, np.frombuffer(raw, np.uint8))
                self.file.write_at(
                    ctx, 0, struct.pack("<IxxxxQ", MAGIC, self._eof)
                )
        self.file.close(ctx)


@register_driver
class AdiosDriver(PIODriver):
    name = "adios"

    def __init__(self, *, aggregation: int | None = None):
        self.handle: AdiosFile | None = None
        self.aggregation = aggregation
        self._gdims: dict[str, tuple] = {}

    def open(self, ctx, comm, path: str, mode: str) -> None:
        with self.op_span(ctx, "open", mode=mode):
            self.handle = AdiosFile(ctx, comm, path, mode,
                                    aggregation=self.aggregation)

    def def_var(self, ctx, name: str, global_dims, dtype) -> None:
        # ADIOS declares dimensions alongside the data (config XML / extra
        # adios_write calls, Fig. 5); nothing to do up front.
        with self.op_span(ctx, "define", var=name):
            self._gdims[name] = tuple(global_dims)

    def write(self, ctx, name: str, array: np.ndarray, offsets) -> None:
        with self.write_op(ctx, name, array):
            self.handle.write(name, array, offsets, self._gdims.get(name))

    def read(self, ctx, name: str, offsets, dims) -> np.ndarray:
        with self.read_op(ctx, name) as op:
            out = self.handle.read(name, offsets, dims)
            op.done(out)
            return out

    def close(self, ctx) -> None:
        with self.op_span(ctx, "close"):
            self.handle.close()
            self.handle = None
