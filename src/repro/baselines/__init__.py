"""Baseline parallel I/O libraries, functionally re-implemented.

Each library reproduces the *data-path structure* that drives the paper's
Figs. 6–7 (see DESIGN.md §2):

=============  =============================================================
library        copy path per byte written
=============  =============================================================
``posix``      user DRAM → kernel → PMEM (no serialization; lower bound)
``adios``      serialize → DRAM staging → kernel POSIX write → PMEM
``netcdf4``    convert/pack → DRAM staging → all-to-all rearrangement →
               aggregator DRAM collective buffer → kernel write → PMEM
``pnetcdf``    same two-phase contiguous path with a CDF-style header
``hdf5``       the substrate under netcdf4 (dataspaces, hyperslabs,
               datasets, property lists) — also usable directly
=============  =============================================================

All of them implement the uniform :class:`PIODriver` interface the
benchmark harness drives, alongside their native-feeling APIs.
"""

from .base import PIODriver, get_driver, available_drivers
from .posixio import PosixDriver
from .adios import AdiosDriver, AdiosFile
from .hdf5 import (H5File, H5Dataset, Dataspace, H5Driver,
                   PropertyList, H5Pcreate, H5Screate_simple)
from .netcdf4 import NetCDF4Driver, NetCDFFile
from .pnetcdf import PnetcdfDriver, PnetcdfFile
from .pmemcpy_driver import PmemcpyDriver

__all__ = [
    "PIODriver",
    "get_driver",
    "available_drivers",
    "PosixDriver",
    "AdiosDriver",
    "AdiosFile",
    "H5File",
    "H5Dataset",
    "Dataspace",
    "H5Driver",
    "PropertyList",
    "H5Pcreate",
    "H5Screate_simple",
    "NetCDF4Driver",
    "NetCDFFile",
    "PnetcdfDriver",
    "PnetcdfFile",
    "PmemcpyDriver",
]
