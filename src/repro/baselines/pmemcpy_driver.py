"""pMEMCPY behind the uniform driver interface, so the harness can run it
head-to-head with the baselines.  ``map_sync=True`` gives the paper's
PMCPY-B configuration; the serializer/layout kwargs expose E5/E6."""

from __future__ import annotations

import numpy as np

from ..pmemcpy import PMEM
from .base import PIODriver, register_driver


@register_driver
class PmemcpyDriver(PIODriver):
    name = "pmemcpy"

    def __init__(self, *, serializer: str = "bp4", layout: str = "hashtable",
                 map_sync: bool = False, pool_size: int | None = None,
                 filters: tuple | list = (),
                 meta_stripes: int | None = None,
                 meta_rw: bool | None = None,
                 chunk_shape=None):
        self.kw = dict(
            serializer=serializer, layout=layout, map_sync=map_sync,
            pool_size=pool_size, filters=filters,
            meta_stripes=meta_stripes, meta_rw=meta_rw,
        )
        #: aligned-chunk grid applied to every def_var (None = store-shaped
        #: chunks); drives the partial-read scenarios' chunked layouts
        self.chunk_shape = tuple(chunk_shape) if chunk_shape else None
        self.pmem: PMEM | None = None

    def open(self, ctx, comm, path: str, mode: str) -> None:
        with self.op_span(ctx, "open", mode=mode):
            self.pmem = PMEM(**self.kw)
            self.pmem.mmap(path, comm)

    def def_var(self, ctx, name: str, global_dims, dtype) -> None:
        with self.op_span(ctx, "define", var=name):
            self.pmem.alloc(name, tuple(global_dims), dtype,
                            chunk_shape=self.chunk_shape)

    def write(self, ctx, name: str, array: np.ndarray, offsets) -> None:
        with self.write_op(ctx, name, array):
            self.pmem.store(name, array, offsets=offsets)

    def read(self, ctx, name: str, offsets, dims) -> np.ndarray:
        with self.read_op(ctx, name) as op:
            out = self.pmem.load(name, offsets=offsets, dims=dims)
            op.done(out)
            return out

    def read_selection(self, ctx, name: str, selection) -> np.ndarray:
        # native path: PMEM.load restricts each chunk to the selection (and
        # raw-serialized chunks fetch only intersecting row segments), so no
        # bounding-box staging happens here
        with self.read_op(ctx, name) as op:
            out = self.pmem.load(name, selection=selection)
            op.done(out)
            return out

    def write_selection(self, ctx, name: str, data, selection) -> None:
        data = np.asarray(data)
        with self.write_op(ctx, name, data):
            self.pmem.store(name, data, selection=selection)

    def close(self, ctx) -> None:
        with self.op_span(ctx, "close"):
            self.pmem.munmap()
            self.pmem = None
