"""The uniform driver interface the experiment harness runs against."""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager

import numpy as np

from ..errors import BaselineError
from ..telemetry import record, span


class _OpMeter:
    """Byte accounting handle the read/write op guards yield."""

    __slots__ = ("nbytes",)

    def __init__(self, nbytes: int = 0):
        self.nbytes = int(nbytes)

    def done(self, array) -> None:
        """Report the materialized payload (call before the block ends)."""
        self.nbytes = int(np.asarray(array).nbytes)


class PIODriver(ABC):
    """One write-or-read session against one file/store.

    Lifecycle: ``open(mode) → [def_var]* → [write|read]* → close``.
    Every method is called SPMD by all ranks of ``comm``.
    """

    name: str = "abstract"

    # -- telemetry --------------------------------------------------------
    # Drivers wrap their write()/read() bodies in these guards so every
    # library reports the same Darshan-style op/byte counters and the same
    # ``driver.*`` span taxonomy.  Accounting is exception-safe: success
    # counters are charged only after the body completes; an unwinding
    # exception charges ``driver_*_errors`` instead and marks the span.

    @contextmanager
    def write_op(self, ctx, name: str, array: np.ndarray):
        meter = _OpMeter(array.nbytes)
        try:
            with span(ctx, "driver.write",
                      var=name, bytes=meter.nbytes, driver=self.name):
                yield meter
        except BaseException:
            record(ctx, "driver_write_errors")
            raise
        record(ctx, "driver_write_ops")
        record(ctx, "driver_write_bytes", meter.nbytes)

    @contextmanager
    def read_op(self, ctx, name: str):
        meter = _OpMeter()
        try:
            with span(ctx, "driver.read", var=name, driver=self.name) as s:
                yield meter
                if s is not None:
                    s.attrs = {**(s.attrs or {}), "bytes": meter.nbytes}
        except BaseException:
            record(ctx, "driver_read_errors")
            raise
        record(ctx, "driver_read_ops")
        record(ctx, "driver_read_bytes", meter.nbytes)

    def op_span(self, ctx, kind: str, **attrs):
        """Span guard for the session ops (``open``/``define``/``close``)."""
        return span(ctx, f"driver.{kind}", driver=self.name, **attrs)

    # legacy helpers (pre-guard drivers charged these at the top of the
    # body, which billed ops that then failed) — kept for external callers
    def note_write(self, ctx, array: np.ndarray) -> None:
        record(ctx, "driver_write_ops")
        record(ctx, "driver_write_bytes", int(array.nbytes))

    def note_read(self, ctx, array) -> None:
        record(ctx, "driver_read_ops")
        record(ctx, "driver_read_bytes", int(np.asarray(array).nbytes))

    @abstractmethod
    def open(self, ctx, comm, path: str, mode: str) -> None:
        """Collective open; ``mode`` is ``"w"`` or ``"r"``."""

    @abstractmethod
    def def_var(self, ctx, name: str, global_dims, dtype) -> None:
        """Collective variable declaration (write mode)."""

    @abstractmethod
    def write(self, ctx, name: str, array: np.ndarray, offsets) -> None:
        """Store this rank's block of ``name`` at ``offsets``."""

    @abstractmethod
    def read(self, ctx, name: str, offsets, dims) -> np.ndarray:
        """Load a block of ``name``."""

    @abstractmethod
    def close(self, ctx) -> None:
        """Collective close (flushes indexes/headers)."""


_DRIVERS: dict[str, type] = {}


def register_driver(cls: type) -> type:
    _DRIVERS[cls.name] = cls
    return cls


def get_driver(name: str, **kw) -> PIODriver:
    """Instantiate a driver by name (``pmemcpy`` accepts the PMEM kwargs,
    e.g. ``map_sync=True`` for the paper's PMCPY-B)."""
    try:
        cls = _DRIVERS[name]
    except KeyError:
        raise BaselineError(
            f"unknown I/O driver {name!r}; available: {available_drivers()}"
        ) from None
    return cls(**kw)


def available_drivers() -> list[str]:
    return sorted(_DRIVERS)
