"""The uniform driver interface the experiment harness runs against."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..errors import BaselineError
from ..telemetry import record


class PIODriver(ABC):
    """One write-or-read session against one file/store.

    Lifecycle: ``open(mode) → [def_var]* → [write|read]* → close``.
    Every method is called SPMD by all ranks of ``comm``.
    """

    name: str = "abstract"

    # -- telemetry --------------------------------------------------------
    # Drivers call these at the top of write()/read() so every library
    # reports the same Darshan-style op/byte counters.

    def note_write(self, ctx, array: np.ndarray) -> None:
        record(ctx, "driver_write_ops")
        record(ctx, "driver_write_bytes", int(array.nbytes))

    def note_read(self, ctx, array) -> None:
        record(ctx, "driver_read_ops")
        record(ctx, "driver_read_bytes", int(np.asarray(array).nbytes))

    @abstractmethod
    def open(self, ctx, comm, path: str, mode: str) -> None:
        """Collective open; ``mode`` is ``"w"`` or ``"r"``."""

    @abstractmethod
    def def_var(self, ctx, name: str, global_dims, dtype) -> None:
        """Collective variable declaration (write mode)."""

    @abstractmethod
    def write(self, ctx, name: str, array: np.ndarray, offsets) -> None:
        """Store this rank's block of ``name`` at ``offsets``."""

    @abstractmethod
    def read(self, ctx, name: str, offsets, dims) -> np.ndarray:
        """Load a block of ``name``."""

    @abstractmethod
    def close(self, ctx) -> None:
        """Collective close (flushes indexes/headers)."""


_DRIVERS: dict[str, type] = {}


def register_driver(cls: type) -> type:
    _DRIVERS[cls.name] = cls
    return cls


def get_driver(name: str, **kw) -> PIODriver:
    """Instantiate a driver by name (``pmemcpy`` accepts the PMEM kwargs,
    e.g. ``map_sync=True`` for the paper's PMCPY-B)."""
    try:
        cls = _DRIVERS[name]
    except KeyError:
        raise BaselineError(
            f"unknown I/O driver {name!r}; available: {available_drivers()}"
        ) from None
    return cls(**kw)


def available_drivers() -> list[str]:
    return sorted(_DRIVERS)
