"""The uniform driver interface the experiment harness runs against."""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager

import numpy as np

from ..errors import BaselineError
from ..mem.memcpy import charge_dram_copy
from ..pmemcpy.selection import Hyperslab, Selection
from ..telemetry import record, span


class _OpMeter:
    """Byte accounting handle the read/write op guards yield."""

    __slots__ = ("nbytes",)

    def __init__(self, nbytes: int = 0):
        self.nbytes = int(nbytes)

    def done(self, array) -> None:
        """Report the materialized payload (call before the block ends)."""
        self.nbytes = int(np.asarray(array).nbytes)


class PIODriver(ABC):
    """One write-or-read session against one file/store.

    Lifecycle: ``open(mode) → [def_var]* → [write|read]* → close``.
    Every method is called SPMD by all ranks of ``comm``.
    """

    name: str = "abstract"

    # -- telemetry --------------------------------------------------------
    # Drivers wrap their write()/read() bodies in these guards so every
    # library reports the same Darshan-style op/byte counters and the same
    # ``driver.*`` span taxonomy.  Accounting is exception-safe: success
    # counters are charged only after the body completes; an unwinding
    # exception charges ``driver_*_errors`` instead and marks the span.

    @contextmanager
    def write_op(self, ctx, name: str, array: np.ndarray):
        meter = _OpMeter(array.nbytes)
        try:
            with span(ctx, "driver.write",
                      var=name, bytes=meter.nbytes, driver=self.name):
                yield meter
        except BaseException:
            record(ctx, "driver_write_errors")
            raise
        record(ctx, "driver_write_ops")
        record(ctx, "driver_write_bytes", meter.nbytes)

    @contextmanager
    def read_op(self, ctx, name: str):
        meter = _OpMeter()
        try:
            with span(ctx, "driver.read", var=name, driver=self.name) as s:
                yield meter
                if s is not None:
                    s.attrs = {**(s.attrs or {}), "bytes": meter.nbytes}
        except BaseException:
            record(ctx, "driver_read_errors")
            raise
        record(ctx, "driver_read_ops")
        record(ctx, "driver_read_bytes", meter.nbytes)

    def op_span(self, ctx, kind: str, **attrs):
        """Span guard for the session ops (``open``/``define``/``close``)."""
        return span(ctx, f"driver.{kind}", driver=self.name, **attrs)

    # legacy helpers (pre-guard drivers charged these at the top of the
    # body, which billed ops that then failed) — kept for external callers
    def note_write(self, ctx, array: np.ndarray) -> None:
        record(ctx, "driver_write_ops")
        record(ctx, "driver_write_bytes", int(array.nbytes))

    def note_read(self, ctx, array) -> None:
        record(ctx, "driver_read_ops")
        record(ctx, "driver_read_bytes", int(np.asarray(array).nbytes))

    @abstractmethod
    def open(self, ctx, comm, path: str, mode: str) -> None:
        """Collective open; ``mode`` is ``"w"`` or ``"r"``."""

    @abstractmethod
    def def_var(self, ctx, name: str, global_dims, dtype) -> None:
        """Collective variable declaration (write mode)."""

    @abstractmethod
    def write(self, ctx, name: str, array: np.ndarray, offsets) -> None:
        """Store this rank's block of ``name`` at ``offsets``."""

    @abstractmethod
    def read(self, ctx, name: str, offsets, dims) -> np.ndarray:
        """Load a block of ``name``."""

    def read_selection(self, ctx, name: str, selection: Selection) -> np.ndarray:
        """Load an arbitrary :class:`~repro.pmemcpy.selection.Selection` of
        ``name`` (already bounds-checked against the variable's extent).

        Default: fetch the selection's bounding box with :meth:`read` and
        gather the selected elements out of the staging block — the honest
        cost model for libraries without sub-block addressing (POSIX
        blocks, ADIOS process-group payloads), which must move the whole
        enclosing region before striding over it in DRAM.  Libraries with
        real sub-block reads (HDF5 dataspaces, netCDF ``get_vars``,
        pMEMCPY selections) override this with their native path."""
        offsets, dims = selection.bbox()
        block = np.asarray(self.read(ctx, name, offsets, dims))
        out = np.empty(selection.out_shape, dtype=block.dtype)
        with span(ctx, "driver.gather", var=name, driver=self.name,
                  bytes=int(out.nbytes)):
            charge_dram_copy(ctx, ctx.model_bytes(out.nbytes),
                             note="stage-gather")
            record(ctx, "driver_selection_staged_bytes", int(block.nbytes))
            selection.scatter_into(out, block.reshape(dims), offsets)
        return out

    def write_selection(self, ctx, name: str, data, selection: Selection) -> None:
        """Store ``data`` (shaped ``selection.out_shape``) into an arbitrary
        hyperslab of ``name``.

        Default: decompose the selection into its maximal contiguous block
        cells and issue one :meth:`write` per cell — every library can
        write strided data, it just degenerates to per-block puts unless
        the driver overrides with a native strided path."""
        if not isinstance(selection, Hyperslab):
            raise BaselineError(
                f"{self.name}: write_selection needs a hyperslab; "
                f"{type(selection).__name__} has no block decomposition"
            )
        data = np.asarray(data)
        if tuple(data.shape) != selection.out_shape:
            raise BaselineError(
                f"{self.name}: data shape {tuple(data.shape)} vs selection "
                f"shape {selection.out_shape}"
            )
        for (cell_off, _cell_dims), result_sl in zip(
            selection.blocks(), selection.block_result_slices()
        ):
            self.write(ctx, name, np.ascontiguousarray(data[result_sl]),
                       cell_off)

    @abstractmethod
    def close(self, ctx) -> None:
        """Collective close (flushes indexes/headers)."""


_DRIVERS: dict[str, type] = {}


def register_driver(cls: type) -> type:
    _DRIVERS[cls.name] = cls
    return cls


def get_driver(name: str, **kw) -> PIODriver:
    """Instantiate a driver by name (``pmemcpy`` accepts the PMEM kwargs,
    e.g. ``map_sync=True`` for the paper's PMCPY-B)."""
    try:
        cls = _DRIVERS[name]
    except KeyError:
        raise BaselineError(
            f"unknown I/O driver {name!r}; available: {available_drivers()}"
        ) from None
    return cls(**kw)


def available_drivers() -> list[str]:
    return sorted(_DRIVERS)
