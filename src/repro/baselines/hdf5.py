"""HDF5-like substrate: dataspaces, hyperslabs, datasets, property lists.

Reproduces the structural behaviors the paper leans on (§2.1):

- datasets have a *global linearized* layout in one shared file — a
  parallel hyperslab write decomposes into strided extents that MPI-IO's
  two-phase collective path must rearrange (the NetCDF/pNetCDF cost);
- three layouts: **contiguous** (default), **chunked** (fixed-size
  sub-arrays, allocated on first touch), **compact** (< 64 KiB datasets
  inline in the object header);
- optional fill values: unless disabled, the entire dataset extent is
  written with the fill pattern at creation (the overhead NetCDF-4 users
  must disable with ``nc_def_var_fill(NC_NOFILL)`` — §4.1).

File layout::

    0:   signature 8B  "\\x89HDF-sim" | version u32 | header_off u64
    64:  dataset raw data regions (and chunks)
    header (at close, rank 0): packed object headers for every dataset
"""

from __future__ import annotations

import math
import struct

import numpy as np

from ..errors import BaselineError, DimensionMismatchError, FormatError
from ..kernel.vfs import OpenFlags
from ..mem.memcpy import charge_cpu, charge_dram_copy
from ..mpi.datatypes import (
    gather_subarray,
    scatter_subarray,
    subarray_run_starts,
    subarray_runs,
)
from ..pmemcpy.selection import Hyperslab, PointSelection, Selection
from ..serial.base import dtype_from_token, dtype_to_token
from ..serial.filters import FilterPipeline
from .base import PIODriver, register_driver

SIGNATURE = b"\x89HDF-sim"
_SUPERBLOCK = 64
COMPACT_LIMIT = 64 * 1024

CONTIGUOUS = "contiguous"
CHUNKED = "chunked"
COMPACT = "compact"


class PropertyList:
    """H5P property list.  Mostly ceremony — which is the paper's point
    about the HDF5 API (§3, Fig. 4) — but faithfully required where real
    HDF5 requires it."""

    _CLASSES = ("file_access", "file_create", "dataset_create", "dataset_xfer")

    def __init__(self, cls: str):
        if cls not in self._CLASSES:
            raise BaselineError(f"unknown property-list class {cls!r}")
        self.cls = cls
        self.comm = None
        self.collective = True
        self.closed = False

    def set_fapl_mpio(self, comm, info=None) -> None:
        """H5Pset_fapl_mpio: select the MPI-IO file driver."""
        if self.cls != "file_access":
            raise BaselineError("set_fapl_mpio needs a file_access plist")
        self.comm = comm

    def set_dxpl_mpio(self, collective: bool = True) -> None:
        """H5Pset_dxpl_mpio: collective vs independent transfers."""
        if self.cls != "dataset_xfer":
            raise BaselineError("set_dxpl_mpio needs a dataset_xfer plist")
        self.collective = collective

    def close(self) -> None:
        self.closed = True


def H5Pcreate(cls: str) -> PropertyList:
    return PropertyList(cls)


def H5Screate_simple(dims) -> "Dataspace":
    return Dataspace(dims)


# ---------------------------------------------------------------------------
# Attributes (H5A): small typed key-values on files, groups, and datasets,
# persisted in the object headers.
# ---------------------------------------------------------------------------

_ATTR_STR, _ATTR_INT, _ATTR_FLOAT, _ATTR_ARRAY = 0, 1, 2, 3


def _pack_attrs(attrs: dict) -> bytes:
    parts = [struct.pack("<H", len(attrs))]
    for key, value in sorted(attrs.items()):
        kb = key.encode()
        parts.append(struct.pack("<H", len(kb)) + kb)
        if isinstance(value, str):
            vb = value.encode()
            parts.append(struct.pack("<BI", _ATTR_STR, len(vb)) + vb)
        elif isinstance(value, (bool, int, np.integer)):
            parts.append(struct.pack("<BIq", _ATTR_INT, 8, int(value)))
        elif isinstance(value, (float, np.floating)):
            parts.append(struct.pack("<BId", _ATTR_FLOAT, 8, float(value)))
        elif isinstance(value, np.ndarray):
            dt = dtype_to_token(value.dtype).encode()
            body = struct.pack("<H", len(dt)) + dt
            body += struct.pack("<B", value.ndim)
            body += struct.pack(f"<{value.ndim}Q", *value.shape)
            body += np.ascontiguousarray(value).tobytes()
            parts.append(struct.pack("<BI", _ATTR_ARRAY, len(body)) + body)
        else:
            raise BaselineError(
                f"unsupported attribute type {type(value).__name__} for {key!r}"
            )
    return b"".join(parts)


def _unpack_attrs(raw: bytes, pos: int) -> tuple[dict, int]:
    (count,) = struct.unpack_from("<H", raw, pos)
    pos += 2
    attrs: dict = {}
    for _ in range(count):
        (klen,) = struct.unpack_from("<H", raw, pos); pos += 2
        key = raw[pos : pos + klen].decode(); pos += klen
        kind, vlen = struct.unpack_from("<BI", raw, pos); pos += 5
        body = raw[pos : pos + vlen]; pos += vlen
        if kind == _ATTR_STR:
            attrs[key] = body.decode()
        elif kind == _ATTR_INT:
            attrs[key] = struct.unpack("<q", body)[0]
        elif kind == _ATTR_FLOAT:
            attrs[key] = struct.unpack("<d", body)[0]
        elif kind == _ATTR_ARRAY:
            (dlen,) = struct.unpack_from("<H", body, 0)
            dtype = dtype_from_token(body[2 : 2 + dlen].decode())
            p = 2 + dlen
            (nd,) = struct.unpack_from("<B", body, p); p += 1
            shape = struct.unpack_from(f"<{nd}Q", body, p); p += 8 * nd
            attrs[key] = np.frombuffer(body[p:], dtype=dtype).reshape(shape)
        else:
            raise FormatError(f"bad attribute kind {kind}")
    return attrs, pos


class H5Group:
    """A group — 'analogous to directories' (§2.1).  Dataset and subgroup
    names are path-joined under the group's own path."""

    def __init__(self, file: "H5File", path: str):
        self.file = file
        self.path = path.strip("/")
        self.attrs: dict = {}

    def _join(self, name: str) -> str:
        return f"{self.path}/{name}" if self.path else name

    def create_group(self, name: str) -> "H5Group":
        return self.file.create_group(self._join(name))

    def group(self, name: str) -> "H5Group":
        return self.file.group(self._join(name))

    def create_dataset(self, name: str, dtype, space: Dataspace, **kw) -> "H5Dataset":
        return self.file.create_dataset(self._join(name), dtype, space, **kw)

    def dataset(self, name: str) -> "H5Dataset":
        return self.file.dataset(self._join(name))

    def keys(self) -> list[str]:
        """Immediate children (datasets and subgroups)."""
        prefix = f"{self.path}/" if self.path else ""
        out = set()
        for name in list(self.file.datasets) + list(self.file.groups):
            if name == self.path:
                continue
            if name.startswith(prefix):
                out.add(name[len(prefix):].split("/")[0])
        return sorted(out)


class Dataspace:
    """H5Screate_simple: an n-d extent, with optional hyperslab/point
    selection (strided hyperslabs and point lists route reads through
    :meth:`H5Dataset.read_selection`)."""

    def __init__(self, dims):
        self.dims = tuple(int(d) for d in dims)
        self.selection: tuple[tuple, tuple] | None = None
        #: strided/point selection (None for whole-extent or plain blocks)
        self.sel: Selection | None = None

    def select_hyperslab(self, offsets, counts, stride=None,
                         block=None) -> "Dataspace":
        offsets, counts = tuple(offsets), tuple(counts)
        if len(offsets) != len(self.dims) or len(counts) != len(self.dims):
            raise BaselineError("hyperslab rank mismatch")
        if stride is not None or block is not None:
            # the full H5Sselect_hyperslab start/stride/count/block form
            try:
                hs = Hyperslab(offsets, counts, stride, block)
                hs.normalized(self.dims)
            except DimensionMismatchError as e:
                raise BaselineError(str(e)) from e
            if hs == Hyperslab.from_block(*hs.bbox()):
                # degenerate strides: keep the fast contiguous-block path
                self.selection, self.sel = hs.bbox(), None
            else:
                self.selection, self.sel = None, hs
            return self
        for o, c, d in zip(offsets, counts, self.dims):
            if o < 0 or c < 0 or o + c > d:
                raise BaselineError(
                    f"hyperslab ({offsets}, {counts}) outside extent {self.dims}"
                )
        self.selection = (offsets, counts)
        self.sel = None
        return self

    def select_elements(self, points) -> "Dataspace":
        """H5Sselect_elements: an explicit point list, read in list order."""
        try:
            sel = PointSelection(points)
            sel.normalized(self.dims)
        except DimensionMismatchError as e:
            raise BaselineError(str(e)) from e
        self.selection, self.sel = None, sel
        return self

    @property
    def nelems(self) -> int:
        return math.prod(self.dims)

    def effective(self) -> tuple[tuple, tuple]:
        if self.sel is not None:
            raise BaselineError(
                "strided/point selections have no single block extent; "
                "use the selection read path"
            )
        if self.selection is None:
            return tuple(0 for _ in self.dims), self.dims
        return self.selection


class H5Dataset:
    def __init__(self, file: "H5File", name: str, dtype, space: Dataspace,
                 layout: str, chunk_dims=None, data_off: int = 0,
                 chunk_index: dict | None = None, compact_data: bytes | None = None,
                 filters=None):
        self.file = file
        self.name = name
        self.dtype = np.dtype(dtype)
        self.space = space
        self.layout = layout
        self.chunk_dims = tuple(chunk_dims) if chunk_dims else None
        self.data_off = data_off
        #: chunk coords -> (file offset, stored byte size); stored size
        #: differs from the raw chunk size when filters are applied
        self.chunk_index: dict[tuple, tuple[int, int]] = chunk_index or {}
        self._compact = bytearray(compact_data or b"")
        #: filter pipeline (requires chunked layout, as in real HDF5 — §2.1)
        self.filters = filters
        #: H5A attributes, persisted in the object header
        self.attrs: dict = {}

    @property
    def shape(self) -> tuple[int, ...]:
        return self.space.dims

    @property
    def nbytes(self) -> int:
        return self.space.nelems * self.dtype.itemsize

    # ------------------------------------------------------------------ write

    def get_space(self) -> Dataspace:
        """H5Dget_space: a fresh dataspace describing the dataset extent."""
        return Dataspace(self.space.dims)

    def close(self) -> None:
        """H5Dclose (handles are GC'd; kept for API fidelity)."""

    def write(self, ctx, data, filespace: Dataspace | None = None,
              memspace: Dataspace | None = None,
              xfer: "PropertyList | None" = None,
              *, collective: bool = True) -> None:
        """H5Dwrite.  ``filespace`` carries the hyperslab selection;
        ``memspace`` (optional) must match the selection extent; ``xfer``
        may switch collective/independent transfer."""
        data = np.ascontiguousarray(data, dtype=self.dtype)
        space = filespace or self.space
        if getattr(space, "sel", None) is not None:
            # strided hyperslab write: one plain block write per maximal
            # contiguous cell of the selection
            sel = space.sel
            if not isinstance(sel, Hyperslab):
                raise BaselineError(
                    "H5Dwrite supports hyperslab selections only"
                )
            if tuple(data.shape) != sel.out_shape:
                raise BaselineError(
                    f"memory space {data.shape} != selection {sel.out_shape}"
                )
            for (cell_off, cell_dims), result_sl in zip(
                sel.blocks(), sel.block_result_slices()
            ):
                fs = Dataspace(self.space.dims).select_hyperslab(
                    cell_off, cell_dims)
                self.write(ctx, np.ascontiguousarray(data[result_sl]), fs,
                           collective=collective)
            return
        offsets, counts = space.effective()
        if memspace is not None and memspace.nelems != math.prod(counts):
            raise BaselineError(
                f"memory space {memspace.dims} != selection {counts}"
            )
        if xfer is not None:
            collective = xfer.collective
        if tuple(data.shape) != tuple(counts):
            raise BaselineError(
                f"memory space {data.shape} != selection {counts}"
            )
        if self.layout == COMPACT:
            self._write_compact(ctx, data, offsets, counts)
        elif self.layout == CONTIGUOUS:
            self._write_contiguous(ctx, data, offsets, counts, collective)
        else:
            self._write_chunked(ctx, data, offsets, counts, collective)

    def _extents_for(self, offsets, counts, base_off: int):
        itemsize = self.dtype.itemsize
        starts = subarray_run_starts(self.space.dims, offsets, counts, itemsize)
        _nruns, run_bytes = subarray_runs(self.space.dims, offsets, counts, itemsize)
        return starts + base_off, run_bytes

    def _write_contiguous(self, ctx, data, offsets, counts, collective) -> None:
        starts, run_bytes = self._extents_for(offsets, counts, self.data_off)
        flat = data.reshape(-1).view(np.uint8)
        extents = [
            (int(s), flat[i * run_bytes : (i + 1) * run_bytes])
            for i, s in enumerate(starts)
        ]
        if collective:
            self.file.mpifile.write_at_all(ctx, extents)
        else:
            for off, run in extents:
                self.file.mpifile.write_at(
                    ctx, off, run, model_bytes=ctx.model_bytes(run.size)
                )

    def _chunk_geom(self, cc) -> tuple[tuple, tuple, int]:
        c_off = tuple(c * cd for c, cd in zip(cc, self.chunk_dims))
        c_dims = tuple(
            min(cd, d - o) for cd, d, o in
            zip(self.chunk_dims, self.space.dims, c_off)
        )
        return c_off, c_dims, math.prod(c_dims) * self.dtype.itemsize

    def _read_chunk_bytes(self, ctx, cc) -> np.ndarray | None:
        """The chunk's raw (post-filter-decode) bytes, or None if never
        written."""
        entry = self.chunk_index.get(cc)
        if entry is None:
            return None
        base, stored = entry
        _c_off, _c_dims, chunk_nbytes = self._chunk_geom(cc)
        raw = self.file.mpifile.read_at(
            ctx, base, stored, model_bytes=ctx.model_bytes(stored)
        )
        if self.filters is not None:
            return np.frombuffer(
                self.filters.decode(ctx, raw.tobytes()), np.uint8
            )
        if raw.size < chunk_nbytes:  # allocated but never written
            raw = np.concatenate(
                [raw, np.zeros(chunk_nbytes - raw.size, np.uint8)]
            )
        return raw

    def _write_chunked(self, ctx, data, offsets, counts, collective) -> None:
        touched = self._chunks_overlapping(offsets, counts)
        if self.filters is None:
            self.file._allocate_chunks(ctx, self, touched)
        # assemble the full new bytes of every touched chunk (RMW if the
        # selection only partially covers it)
        payloads: list[tuple[tuple, bytes]] = []
        for cc in touched:
            c_off, c_dims, chunk_nbytes = self._chunk_geom(cc)
            lo = tuple(max(a, b) for a, b in zip(offsets, c_off))
            hi = tuple(
                min(a + da, b + db)
                for a, da, b, db in zip(offsets, counts, c_off, c_dims)
            )
            if any(l >= h for l, h in zip(lo, hi)):
                continue
            full = all(l == co and h == co + cd for l, h, co, cd
                       in zip(lo, hi, c_off, c_dims))
            src = gather_subarray(
                data.reshape(counts), counts,
                tuple(l - o for l, o in zip(lo, offsets)),
                tuple(h - l for l, h in zip(lo, hi)),
            )
            if full:
                chunk = np.ascontiguousarray(src, dtype=self.dtype)
            else:
                prior = self._read_chunk_bytes(ctx, cc)
                if prior is None:
                    chunk = np.zeros(c_dims, dtype=self.dtype)
                else:
                    chunk = np.frombuffer(
                        prior.tobytes(), dtype=self.dtype
                    ).reshape(c_dims).copy()
                scatter_subarray(
                    chunk.reshape(-1), src, c_dims,
                    tuple(l - co for l, co in zip(lo, c_off)),
                )
            payloads.append((cc, chunk.reshape(-1).view(np.uint8).tobytes()))

        if self.filters is not None:
            # encode, then collectively append the variable-size chunks at
            # agreed EOF positions (HDF5 never moves old chunk versions
            # without an explicit repack — the leak is authentic)
            encoded = [
                (cc, self.filters.encode(ctx, raw)) for cc, raw in payloads
            ]
            mine = [(cc, len(blob)) for cc, blob in encoded]
            announced = self.file.comm.allgather(mine)
            pos = self.file._eof
            for r, entries in enumerate(announced):
                for cc, size in entries:
                    self.chunk_index[tuple(cc)] = (pos, size)
                    pos += size
            self.file._eof = pos
            extents = [
                (self.chunk_index[cc][0], np.frombuffer(blob, np.uint8))
                for cc, blob in encoded
            ]
        else:
            extents = [
                (self.chunk_index[cc][0], np.frombuffer(raw, np.uint8))
                for cc, raw in payloads
            ]
        if collective:
            self.file.mpifile.write_at_all(ctx, extents)
        else:
            for off, run in extents:
                self.file.mpifile.write_at(
                    ctx, off, run, model_bytes=ctx.model_bytes(run.size)
                )

    def _write_compact(self, ctx, data, offsets, counts) -> None:
        if self.nbytes > COMPACT_LIMIT:
            raise BaselineError("compact layout limited to 64 KiB")
        if len(self._compact) < self.nbytes:
            self._compact = bytearray(self.nbytes)
        view = np.frombuffer(self._compact, dtype=self.dtype).reshape(self.space.dims)
        arr = np.frombuffer(bytes(view), dtype=self.dtype).reshape(self.space.dims).copy()
        scatter_subarray(arr.reshape(-1), data.reshape(counts), self.space.dims, offsets)
        self._compact = bytearray(arr.tobytes())
        charge_dram_copy(ctx, ctx.model_bytes(data.nbytes), note="compact")

    # ------------------------------------------------------------------ read

    def read(self, ctx, filespace: Dataspace | None = None,
             memspace: Dataspace | None = None,
             xfer: "PropertyList | None" = None,
             *, collective: bool = True) -> np.ndarray:
        if xfer is not None:
            collective = xfer.collective
        space = filespace or self.space
        if getattr(space, "sel", None) is not None:
            return self.read_selection(ctx, space.sel, collective=collective)
        offsets, counts = space.effective()
        if self.layout == COMPACT:
            arr = np.frombuffer(bytes(self._compact), dtype=self.dtype)
            arr = arr.reshape(self.space.dims)
            charge_dram_copy(
                ctx, ctx.model_bytes(math.prod(counts) * self.dtype.itemsize),
                note="compact",
            )
            return gather_subarray(arr.reshape(-1), self.space.dims, offsets, counts)
        if self.layout == CONTIGUOUS:
            starts, run_bytes = self._extents_for(offsets, counts, self.data_off)
            reqs = [(int(s), run_bytes) for s in starts]
            if collective:
                runs = self.file.mpifile.read_at_all(ctx, reqs)
            else:
                runs = [
                    self.file.mpifile.read_at(
                        ctx, off, size, model_bytes=ctx.model_bytes(size)
                    )
                    for off, size in reqs
                ]
            flat = np.concatenate(runs) if runs else np.empty(0, np.uint8)
            return np.frombuffer(flat.tobytes(), dtype=self.dtype).reshape(counts)
        # chunked
        out = np.zeros(counts, dtype=self.dtype)
        for cc in self._chunks_overlapping(offsets, counts):
            c_off, c_dims, _nb = self._chunk_geom(cc)
            lo = tuple(max(a, b) for a, b in zip(offsets, c_off))
            hi = tuple(
                min(a + da, b + db)
                for a, da, b, db in zip(offsets, counts, c_off, c_dims)
            )
            if any(l >= h for l, h in zip(lo, hi)):
                continue
            want = tuple(h - l for l, h in zip(lo, hi))
            raw = self._read_chunk_bytes(ctx, cc)
            if raw is None:
                continue  # unallocated chunk reads as zeros/fill
            chunk = np.frombuffer(raw.tobytes(), dtype=self.dtype).reshape(c_dims)
            sub = gather_subarray(
                chunk.reshape(-1), c_dims,
                tuple(l - co for l, co in zip(lo, c_off)), want,
            )
            scatter_subarray(
                out.reshape(-1), sub, counts,
                tuple(l - o for l, o in zip(lo, offsets)),
            )
        return out

    def read_selection(self, ctx, sel: Selection, *,
                       collective: bool = True) -> np.ndarray:
        """Read an arbitrary selection with the layout's native cost:

        - *contiguous* datasets turn the selection's row segments into
          MPI-IO extents directly — only selected bytes cross the wire
          (modulo collective-buffering stripes);
        - *chunked* datasets read every intersecting chunk whole (the real
          HDF5 granularity: a chunk is fetched and decoded in full before
          sub-selection) and gather in DRAM;
        - *compact* datasets gather from the in-header copy.
        """
        itemsize = self.dtype.itemsize
        out = np.empty(sel.out_shape, dtype=self.dtype)
        flat = out.reshape(-1)
        if self.layout == COMPACT:
            arr = np.frombuffer(bytes(self._compact), dtype=self.dtype)
            arr = arr.reshape(self.space.dims)
            charge_dram_copy(
                ctx, ctx.model_bytes(out.nbytes), note="compact")
            sel.scatter_into(out, arr, tuple(0 for _ in self.space.dims))
            return out
        if self.layout == CONTIGUOUS:
            origin = tuple(0 for _ in self.space.dims)
            runs = list(sel.runs(origin, self.space.dims))
            reqs = [
                (self.data_off + r.src * itemsize, r.nelems * itemsize)
                for r in runs
            ]
            if collective:
                got = self.file.mpifile.read_at_all(ctx, reqs)
            else:
                got = [
                    self.file.mpifile.read_at(
                        ctx, off, size, model_bytes=ctx.model_bytes(size))
                    for off, size in reqs
                ]
            for r, raw in zip(runs, got):
                flat[r.dst : r.dst + r.nelems] = np.frombuffer(
                    raw.tobytes(), dtype=self.dtype)
            return out
        # chunked: fetch each intersecting chunk whole, gather in DRAM
        out.fill(0)  # unallocated chunks read as zeros/fill
        bb_off, bb_dims = sel.bbox()
        for cc in self._chunks_overlapping(bb_off, bb_dims):
            c_off, c_dims, _nb = self._chunk_geom(cc)
            if not sel.intersects(c_off, c_dims):
                continue
            raw = self._read_chunk_bytes(ctx, cc)
            if raw is None:
                continue
            chunk = np.frombuffer(raw.tobytes(), dtype=self.dtype)
            sel.scatter_into(out, chunk.reshape(c_dims), c_off)
        return out

    def _chunks_overlapping(self, offsets, counts) -> list[tuple]:
        los = [o // cd for o, cd in zip(offsets, self.chunk_dims)]
        his = [
            max(lo_i, -(-(o + c) // cd) - 1) if c else lo_i - 1
            for lo_i, o, c, cd in zip(los, offsets, counts, self.chunk_dims)
        ]
        coords: list[tuple] = []

        def rec(d, prefix):
            if d == len(los):
                coords.append(tuple(prefix))
                return
            for v in range(los[d], his[d] + 1):
                rec(d + 1, prefix + [v])

        if all(h >= l for l, h in zip(los, his)):
            rec(0, [])
        return coords


class H5File:
    """A parallel HDF5-like file (the MPI-IO driver is implied by ``comm``)."""

    def __init__(self, ctx, comm, path: str, mode: str):
        from ..mpi.io import MPIFile

        self.ctx = ctx
        self.comm = comm
        self.path = path
        self.mode = mode
        self.datasets: dict[str, H5Dataset] = {}
        self.groups: dict[str, H5Group] = {}
        self.attrs: dict = {}
        self._eof = _SUPERBLOCK
        flags = (
            OpenFlags.CREAT | OpenFlags.RDWR | OpenFlags.TRUNC
            if mode == "w" else OpenFlags.RDWR
        )
        self.mpifile = MPIFile.open(ctx, comm, ctx.env.vfs, path, flags)
        if mode == "r":
            self._load_header(ctx)

    # ------------------------------------------------------------------ create

    @classmethod
    def create(cls, ctx, comm, path: str, fapl: "PropertyList | None" = None) -> "H5File":
        """H5Fcreate.  ``fapl`` with ``set_fapl_mpio(comm)`` selects the
        parallel driver; its comm must match the open collective."""
        cls._check_fapl(fapl, comm)
        return cls(ctx, comm, path, "w")

    @classmethod
    def open(cls, ctx, comm, path: str, fapl: "PropertyList | None" = None) -> "H5File":
        cls._check_fapl(fapl, comm)
        return cls(ctx, comm, path, "r")

    @staticmethod
    def _check_fapl(fapl, comm) -> None:
        if fapl is not None and fapl.comm is not None and fapl.comm is not comm:
            raise BaselineError("fapl communicator does not match open")

    # ------------------------------------------------------------------ groups

    @property
    def root_group(self) -> "H5Group":
        return H5Group(self, "")

    def create_group(self, path: str) -> "H5Group":
        path = path.strip("/")
        if not path:
            raise BaselineError("cannot re-create the root group")
        # intermediate groups spring into existence, directory-style
        parts = path.split("/")
        for i in range(1, len(parts) + 1):
            sub = "/".join(parts[:i])
            if sub not in self.groups:
                self.groups[sub] = H5Group(self, sub)
        return self.groups[path]

    def group(self, path: str) -> "H5Group":
        path = path.strip("/")
        if not path:
            return self.root_group
        try:
            return self.groups[path]
        except KeyError:
            raise FormatError(f"no group {path!r}") from None

    def create_dataset(
        self,
        name: str,
        dtype,
        space: Dataspace,
        *,
        layout: str = CONTIGUOUS,
        chunk_dims=None,
        fill=None,
        filters=None,
    ) -> H5Dataset:
        """Collective.  ``fill`` writes the fill pattern over the whole
        extent (HDF5/NetCDF default behavior; pass None for NOFILL).
        ``filters`` is a list of filter specs (e.g. ["shuffle:8",
        "deflate"]) and — as in real HDF5 (§2.1) — requires the chunked
        layout."""
        if self.mode != "w":
            raise BaselineError("file opened read-only")
        if name in self.datasets:
            raise BaselineError(f"dataset {name!r} exists")
        if layout == CHUNKED and not chunk_dims:
            raise BaselineError("chunked layout requires chunk_dims")
        if filters and layout != CHUNKED:
            raise BaselineError("filters require the chunked layout")
        if layout == COMPACT and math.prod(space.dims) * np.dtype(dtype).itemsize > COMPACT_LIMIT:
            raise BaselineError("compact layout limited to 64 KiB")
        pipeline = FilterPipeline(filters) if filters else None
        if "/" in name:
            self.create_group(name.rsplit("/", 1)[0])
        ds = H5Dataset(self, name, dtype, Dataspace(space.dims), layout,
                       chunk_dims, filters=pipeline)
        if layout == CONTIGUOUS:
            ds.data_off = self._eof
            self._eof += ds.nbytes
        self.datasets[name] = ds
        if fill is not None and layout != COMPACT:
            self._fill_dataset(self.ctx, ds, fill)
        return ds

    def _fill_dataset(self, ctx, ds: H5Dataset, fill) -> None:
        """Collectively write the fill value over the dataset extent,
        rank-striped."""
        if ds.layout != CONTIGUOUS:
            return  # chunked datasets fill lazily at allocation
        per = -(-ds.nbytes // self.comm.size)
        lo = min(self.comm.rank * per, ds.nbytes)
        hi = min(lo + per, ds.nbytes)
        if hi > lo:
            pattern = np.full(
                (hi - lo) // ds.dtype.itemsize, fill, dtype=ds.dtype
            ).view(np.uint8)
            self.mpifile.write_at(
                ctx, ds.data_off + lo, pattern,
                model_bytes=ctx.model_bytes(hi - lo),
            )
        self.comm.barrier()

    def _allocate_chunks(self, ctx, ds: H5Dataset, coords: list[tuple]) -> None:
        """Collective lazy chunk allocation (B-tree insertion analog)."""
        need = sorted(set(coords) - set(ds.chunk_index))
        all_needs = self.comm.allgather(need)
        merged: list[tuple] = sorted({c for sub in all_needs for c in sub})
        for cc in merged:
            if cc in ds.chunk_index:
                continue
            _c_off, _c_dims, chunk_nbytes = ds._chunk_geom(cc)
            ds.chunk_index[cc] = (self._eof, chunk_nbytes)
            self._eof += chunk_nbytes

    def dataset(self, name: str) -> H5Dataset:
        try:
            return self.datasets[name]
        except KeyError:
            raise FormatError(f"no dataset {name!r}") from None

    # ------------------------------------------------------------------ header

    def _pack_header(self) -> bytes:
        parts = [struct.pack("<I", len(self.datasets))]
        for ds in self.datasets.values():
            name = ds.name.encode()
            dt = dtype_to_token(ds.dtype).encode()
            nd = len(ds.space.dims)
            layout_code = {CONTIGUOUS: 0, CHUNKED: 1, COMPACT: 2}[ds.layout]
            parts.append(struct.pack("<HBB", len(name), layout_code, nd))
            parts.append(name)
            parts.append(struct.pack("<H", len(dt)))
            parts.append(dt)
            parts.append(struct.pack(f"<{nd}Q", *ds.space.dims))
            parts.append(struct.pack("<Q", ds.data_off))
            flt = ",".join(ds.filters.names).encode() if ds.filters else b""
            parts.append(struct.pack("<H", len(flt)) + flt)
            if ds.layout == CHUNKED:
                parts.append(struct.pack(f"<{nd}Q", *ds.chunk_dims))
                parts.append(struct.pack("<I", len(ds.chunk_index)))
                for cc, (off, size) in sorted(ds.chunk_index.items()):
                    parts.append(struct.pack(f"<{nd}Q", *cc))
                    parts.append(struct.pack("<QQ", off, size))
            elif ds.layout == COMPACT:
                parts.append(struct.pack("<I", len(ds._compact)))
                parts.append(bytes(ds._compact))
            parts.append(_pack_attrs(ds.attrs))
        parts.append(struct.pack("<I", len(self.groups)))
        for path, grp in sorted(self.groups.items()):
            pb = path.encode()
            parts.append(struct.pack("<H", len(pb)) + pb)
            parts.append(_pack_attrs(grp.attrs))
        parts.append(_pack_attrs(self.attrs))
        return b"".join(parts)

    def _unpack_header(self, raw: bytes) -> None:
        (count,) = struct.unpack_from("<I", raw, 0)
        pos = 4
        for _ in range(count):
            nlen, layout_code, nd = struct.unpack_from("<HBB", raw, pos)
            pos += 4
            name = raw[pos : pos + nlen].decode(); pos += nlen
            (dlen,) = struct.unpack_from("<H", raw, pos); pos += 2
            dtype = dtype_from_token(raw[pos : pos + dlen].decode()); pos += dlen
            dims = struct.unpack_from(f"<{nd}Q", raw, pos); pos += 8 * nd
            (data_off,) = struct.unpack_from("<Q", raw, pos); pos += 8
            (flt_len,) = struct.unpack_from("<H", raw, pos); pos += 2
            flt_names = raw[pos : pos + flt_len].decode(); pos += flt_len
            pipeline = (
                FilterPipeline(flt_names.split(",")) if flt_names else None
            )
            layout = [CONTIGUOUS, CHUNKED, COMPACT][layout_code]
            chunk_dims = None
            chunk_index: dict[tuple, tuple[int, int]] = {}
            compact = None
            if layout == CHUNKED:
                chunk_dims = struct.unpack_from(f"<{nd}Q", raw, pos); pos += 8 * nd
                (ncc,) = struct.unpack_from("<I", raw, pos); pos += 4
                for _ in range(ncc):
                    cc = struct.unpack_from(f"<{nd}Q", raw, pos); pos += 8 * nd
                    off, size = struct.unpack_from("<QQ", raw, pos); pos += 16
                    chunk_index[cc] = (off, size)
            elif layout == COMPACT:
                (clen,) = struct.unpack_from("<I", raw, pos); pos += 4
                compact = raw[pos : pos + clen]; pos += clen
            ds = H5Dataset(
                self, name, dtype, Dataspace(dims), layout, chunk_dims,
                data_off, chunk_index, compact, filters=pipeline,
            )
            ds.attrs, pos = _unpack_attrs(raw, pos)
            self.datasets[name] = ds
        (ngroups,) = struct.unpack_from("<I", raw, pos); pos += 4
        for _ in range(ngroups):
            (plen,) = struct.unpack_from("<H", raw, pos); pos += 2
            path = raw[pos : pos + plen].decode(); pos += plen
            grp = H5Group(self, path)
            grp.attrs, pos = _unpack_attrs(raw, pos)
            self.groups[path] = grp
        self.attrs, pos = _unpack_attrs(raw, pos)

    def _load_header(self, ctx) -> None:
        if self.comm.rank == 0:
            sb = self.mpifile.read_at(ctx, 0, _SUPERBLOCK).tobytes()
            if sb[:8] != SIGNATURE:
                raise FormatError(f"{self.path}: not an HDF5-sim file")
            _version, header_off, header_len = struct.unpack_from("<IQQ", sb, 8)
            raw = self.mpifile.read_at(ctx, header_off, header_len).tobytes()
            # parsing the object headers is a CPU pass
            charge_cpu(ctx, float(len(raw)), 0.5, note="h5-header-parse")
            payload = raw
        else:
            payload = None
        payload = self.comm.bcast(payload, root=0)
        self._unpack_header(payload)
        # restore EOF for append-after-open scenarios
        self._eof = max(
            [_SUPERBLOCK]
            + [ds.data_off + ds.nbytes for ds in self.datasets.values()
               if ds.layout == CONTIGUOUS]
            + [off + size for ds in self.datasets.values()
               for off, size in ds.chunk_index.values()],
        )

    def close(self) -> None:
        ctx = self.ctx
        if self.mode == "w":
            # compact datasets live in the header; every rank's copy must
            # agree — gather rank 0's view (collective semantics simplified)
            header = self._pack_header() if self.comm.rank == 0 else None
            self.comm.barrier()
            if self.comm.rank == 0:
                self.mpifile.write_at(
                    ctx, self._eof, np.frombuffer(header, np.uint8)
                )
                sb = SIGNATURE + struct.pack(
                    "<IQQ", 1, self._eof, len(header)
                )
                sb += bytes(_SUPERBLOCK - len(sb))
                self.mpifile.write_at(ctx, 0, np.frombuffer(sb, np.uint8))
            self.mpifile.sync(ctx)
        self.mpifile.close(ctx)


@register_driver
class H5Driver(PIODriver):
    """Drive HDF5 directly (contiguous datasets, collective transfers)."""

    name = "hdf5"

    def __init__(self, *, fill=None):
        self.file: H5File | None = None
        self.fill = fill

    def open(self, ctx, comm, path: str, mode: str) -> None:
        with self.op_span(ctx, "open", mode=mode):
            self.file = H5File(ctx, comm, path, mode)

    def def_var(self, ctx, name: str, global_dims, dtype) -> None:
        with self.op_span(ctx, "define", var=name):
            self.file.create_dataset(
                name, dtype, Dataspace(global_dims), fill=self.fill
            )

    def write(self, ctx, name: str, array: np.ndarray, offsets) -> None:
        with self.write_op(ctx, name, array):
            ds = self.file.dataset(name)
            fs = Dataspace(ds.space.dims).select_hyperslab(
                offsets, array.shape)
            ds.write(ctx, array, fs)

    def read(self, ctx, name: str, offsets, dims) -> np.ndarray:
        with self.read_op(ctx, name) as op:
            ds = self.file.dataset(name)
            fs = Dataspace(ds.space.dims).select_hyperslab(offsets, dims)
            out = ds.read(ctx, fs)
            op.done(out)
            return out

    def read_selection(self, ctx, name: str, selection) -> np.ndarray:
        # native dataspace selections: contiguous datasets fetch only the
        # selection's row segments, chunked ones each intersecting chunk
        with self.read_op(ctx, name) as op:
            ds = self.file.dataset(name)
            out = ds.read_selection(ctx, selection)
            op.done(out)
            return out

    def write_selection(self, ctx, name: str, data, selection) -> None:
        data = np.asarray(data)
        with self.write_op(ctx, name, data):
            ds = self.file.dataset(name)
            fs = Dataspace(ds.space.dims)
            fs.sel = selection
            ds.write(ctx, data, fs)

    def close(self, ctx) -> None:
        with self.op_span(ctx, "close"):
            self.file.close()
            self.file = None
