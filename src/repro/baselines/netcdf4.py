"""NetCDF-4-like library over the HDF5 substrate.

Mirrors the classic API flow: ``nc_create → def_dim → def_var →
[set_fill] → put_vara / get_vara → close``.  A NetCDF variable is an HDF5
contiguous dataset; parallel transfers go through the two-phase collective
MPI-IO path, which is where the rearrangement cost of the global
linearization lands (paper §4.1).

On top of the HDF5 write, ``put_vara`` performs NetCDF's *external format
conversion/pack* pass into a DRAM staging buffer — the extra copy the
library stack adds before MPI-IO ever sees the data.

Fill values: NetCDF fills variables with a default pattern at definition
unless ``set_fill(NC_NOFILL)`` — the paper explicitly disables this, and
the E-fill ablation measures why.
"""

from __future__ import annotations

import numpy as np

from ..errors import BaselineError
from ..mem.memcpy import charge_cpu, charge_dram_copy
from .base import PIODriver, register_driver
from .hdf5 import Dataspace, H5File

NC_FILL = "fill"
NC_NOFILL = "nofill"

#: NetCDF's default fill for doubles
NC_FILL_DOUBLE = 9.969209968386869e36

#: throughput of the external-format conversion pass (bytes/ns/core)
CONVERT_BW = 2.2


class NetCDFFile:
    def __init__(self, ctx, comm, path: str, mode: str, *, fill_mode: str = NC_FILL):
        self.ctx = ctx
        self.comm = comm
        self.fill_mode = fill_mode
        self.h5 = H5File(ctx, comm, path, mode)
        self.dims: dict[str, int] = {}
        self._var_dims: dict[str, tuple[str, ...]] = {}
        if mode == "r":
            # dimensions are implied by dataset shapes on read
            for name, ds in self.h5.datasets.items():
                self._var_dims[name] = tuple(
                    f"{name}_d{i}" for i in range(len(ds.space.dims))
                )

    # ------------------------------------------------------------------ define mode

    def def_dim(self, name: str, size: int) -> str:
        if name in self.dims and self.dims[name] != size:
            raise BaselineError(f"dimension {name!r} redefined")
        self.dims[name] = int(size)
        return name

    def set_fill(self, mode: str) -> None:
        """nc_set_fill / nc_def_var_fill(NC_NOFILL)."""
        if mode not in (NC_FILL, NC_NOFILL):
            raise BaselineError(f"bad fill mode {mode!r}")
        self.fill_mode = mode

    def def_var(self, name: str, dtype, dim_names) -> str:
        shape = tuple(self.dims[d] for d in dim_names)
        fill = None
        if self.fill_mode == NC_FILL:
            fill = NC_FILL_DOUBLE if np.dtype(dtype).kind == "f" else 0
        self.h5.create_dataset(name, dtype, Dataspace(shape), fill=fill)
        self._var_dims[name] = tuple(dim_names)
        return name

    # ------------------------------------------------------------------ data mode

    def put_vara(self, ctx, name: str, start, count, data) -> None:
        ds = self.h5.dataset(name)
        data = np.ascontiguousarray(data, dtype=ds.dtype)
        # external format conversion/pack into a staging buffer
        charge_cpu(ctx, ctx.model_bytes(data.nbytes), CONVERT_BW, note="nc-pack")
        charge_dram_copy(ctx, ctx.model_bytes(data.nbytes), note="stage-copy")
        fs = Dataspace(ds.space.dims).select_hyperslab(start, count)
        ds.write(ctx, data, fs)

    def get_vara(self, ctx, name: str, start, count) -> np.ndarray:
        ds = self.h5.dataset(name)
        fs = Dataspace(ds.space.dims).select_hyperslab(start, count)
        out = ds.read(ctx, fs)
        # conversion from external format into the user buffer (the DRAM
        # traffic of this pass is covered by the collective-buffer charges)
        charge_cpu(ctx, ctx.model_bytes(out.nbytes), CONVERT_BW, note="nc-unpack")
        return out

    def get_selection(self, ctx, name: str, selection) -> np.ndarray:
        """nc_get_vars-style strided/point read: the underlying HDF5
        dataspace selection fetches only the selected row segments, then
        the usual external-format conversion pass runs over the result."""
        ds = self.h5.dataset(name)
        out = ds.read_selection(ctx, selection)
        charge_cpu(ctx, ctx.model_bytes(out.nbytes), CONVERT_BW, note="nc-unpack")
        return out

    def get_vars(self, ctx, name: str, start, count, stride) -> np.ndarray:
        """nc_get_vars: start/count/stride subsampled read."""
        ds = self.h5.dataset(name)
        fs = Dataspace(ds.space.dims).select_hyperslab(start, count, stride)
        out = ds.read(ctx, fs)
        charge_cpu(ctx, ctx.model_bytes(out.nbytes), CONVERT_BW, note="nc-unpack")
        return out

    def inq_var_dims(self, name: str) -> tuple[int, ...]:
        return self.h5.dataset(name).space.dims

    # ------------------------------------------------------------------ attributes

    def put_att(self, var: str | None, key: str, value) -> None:
        """nc_put_att: attach metadata to a variable, or globally
        (``var=None``)."""
        target = self.h5.attrs if var is None else self.h5.dataset(var).attrs
        target[key] = value

    def get_att(self, var: str | None, key: str):
        """nc_get_att; raises BaselineError when absent."""
        target = self.h5.attrs if var is None else self.h5.dataset(var).attrs
        try:
            return target[key]
        except KeyError:
            raise BaselineError(
                f"no attribute {key!r} on {var or 'file'}"
            ) from None

    def att_names(self, var: str | None = None) -> list[str]:
        target = self.h5.attrs if var is None else self.h5.dataset(var).attrs
        return sorted(target)

    def close(self) -> None:
        self.h5.close()


@register_driver
class NetCDF4Driver(PIODriver):
    name = "netcdf4"

    def __init__(self, *, fill_mode: str = NC_NOFILL):
        # the paper's runs use NC_NOFILL (§4.1); NC_FILL is the ablation
        self.fill_mode = fill_mode
        self.nc: NetCDFFile | None = None

    def open(self, ctx, comm, path: str, mode: str) -> None:
        with self.op_span(ctx, "open", mode=mode):
            self.nc = NetCDFFile(ctx, comm, path, mode,
                                 fill_mode=self.fill_mode)

    def def_var(self, ctx, name: str, global_dims, dtype) -> None:
        with self.op_span(ctx, "define", var=name):
            dim_names = [
                self.nc.def_dim(f"{name}_d{i}", d)
                for i, d in enumerate(global_dims)
            ]
            self.nc.def_var(name, dtype, dim_names)

    def write(self, ctx, name: str, array: np.ndarray, offsets) -> None:
        with self.write_op(ctx, name, array):
            self.nc.put_vara(ctx, name, offsets, array.shape, array)

    def read(self, ctx, name: str, offsets, dims) -> np.ndarray:
        with self.read_op(ctx, name) as op:
            out = self.nc.get_vara(ctx, name, offsets, dims)
            op.done(out)
            return out

    def read_selection(self, ctx, name: str, selection) -> np.ndarray:
        with self.read_op(ctx, name) as op:
            out = self.nc.get_selection(ctx, name, selection)
            op.done(out)
            return out

    def close(self, ctx) -> None:
        with self.op_span(ctx, "close"):
            self.nc.close()
            self.nc = None
