"""Exception taxonomy for the reproduction stack.

Each substrate raises its own subclass so callers can distinguish, e.g., a
simulated kernel fault (``KernelError``) from a PMDK transaction abort
(``TransactionAborted``).  Everything derives from :class:`ReproError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


# -- memory / device ---------------------------------------------------------

class MemoryError_(ReproError):
    """Base for emulated-memory errors (named with underscore to avoid
    shadowing the builtin)."""


class OutOfSpaceError(MemoryError_):
    """A device, pool, or filesystem ran out of capacity."""


class BadAddressError(MemoryError_):
    """An access fell outside a mapped region or device."""


class TornWriteError(MemoryError_):
    """Crash-simulation detected data read back that was never persisted."""


# -- kernel / filesystem ------------------------------------------------------

class KernelError(ReproError):
    """Base for simulated-kernel errors; carries a POSIX-style errno name."""

    errno_name = "EIO"


class NoSuchFileError(KernelError):
    errno_name = "ENOENT"


class FileExistsError_(KernelError):
    errno_name = "EEXIST"


class IsADirectoryError_(KernelError):
    errno_name = "EISDIR"


class NotADirectoryError_(KernelError):
    errno_name = "ENOTDIR"


class BadFileDescriptorError(KernelError):
    errno_name = "EBADF"


class InvalidArgumentError(KernelError):
    errno_name = "EINVAL"


class NoSpaceError(KernelError):
    errno_name = "ENOSPC"


class NotEmptyError(KernelError):
    errno_name = "ENOTEMPTY"


# -- PMDK ---------------------------------------------------------------------

class PmdkError(ReproError):
    """Base for the emulated PMDK object store."""


class PoolCorruptError(PmdkError):
    """Pool superblock/layout validation failed."""


class TransactionAborted(PmdkError):
    """A transaction was explicitly aborted; changes were rolled back."""


class AllocationError(PmdkError):
    """The persistent allocator could not satisfy a request."""


# -- MPI ----------------------------------------------------------------------

class MPIError(ReproError):
    """Base for the simulated MPI runtime."""


class CommunicatorError(MPIError):
    """Mismatched collective participation or invalid rank."""


class CollectiveAbortedError(CommunicatorError):
    """A collective (or recv) was abandoned because a *peer* rank failed.

    Secondary casualty, never the root cause — the engine's failure
    unwinding skips these when picking the exception to surface."""


class RankFailedError(MPIError):
    """A peer rank raised; collective operations propagate this."""

    def __init__(self, rank: int, original: BaseException,
                 worker_pids: tuple[int, ...] | None = None):
        super().__init__(f"rank {rank} failed: {original!r}")
        self.rank = rank
        self.original = original
        #: PIDs of the OS-process workers (procs engine only) — lets
        #: post-mortem tooling map ranks to live/dead processes
        self.worker_pids = worker_pids


# -- rank engines --------------------------------------------------------------

class EngineUnavailableError(ReproError):
    """The requested rank engine cannot run on this platform/configuration
    (no ``fork``, no shared memory, or crash-simulation requested under the
    procs engine).  ``threads`` remains the universal default."""


class WorkerCrashedError(ReproError):
    """A procs-engine worker died without reporting a result (e.g. SIGKILL
    mid-critical-section); carries the worker's pid and wait status."""

    def __init__(self, rank: int, pid: int, status: int):
        super().__init__(
            f"rank {rank} worker (pid {pid}) died without a result "
            f"(wait status {status})"
        )
        self.rank = rank
        self.pid = pid
        self.status = status


class LockDisciplineError(ReproError):
    """The post-run lock-discipline checker found a violation: a lock-order
    cycle (potential deadlock), a metadata write outside its owning guard
    (lost-update race), or an unmatched acquire/release."""


# -- serialization / pMEMCPY ---------------------------------------------------

class SerializationError(ReproError):
    """Pack/unpack failure (format violation, short buffer, bad magic)."""


class PmemcpyError(ReproError):
    """Base for the pMEMCPY public API."""


class KeyNotFoundError(PmemcpyError, KeyError):
    """``load`` of an id that was never stored."""


class DimensionMismatchError(PmemcpyError):
    """Subarray offsets/dims incompatible with the allocated variable."""


class NotMappedError(PmemcpyError):
    """API used before ``mmap`` or after ``munmap``."""


# -- service ------------------------------------------------------------------

class ServiceError(ReproError):
    """Base for the pMEMCPY-as-a-service layer (:mod:`repro.service`).

    Every subclass carries a stable wire code (see
    :mod:`repro.service.wire`) so typed errors round-trip the RPC boundary:
    the server encodes the exception, the client re-raises the same type.
    """


class ProtocolError(ServiceError):
    """Malformed frame: bad magic, short frame, unknown opcode, or a body
    that does not decode.  A protocol error means one side violated the
    wire format — the load harness counts these separately from typed
    application errors and requires zero of them."""


class ProtocolVersionError(ProtocolError):
    """Peer speaks a different wire-protocol version."""

    def __init__(self, theirs: int, ours: int):
        super().__init__(
            f"wire protocol version mismatch: peer speaks v{theirs}, "
            f"this side speaks v{ours}"
        )
        self.theirs = theirs
        self.ours = ours


class ServiceOverloadedError(ServiceError):
    """Admission control rejected the request: the bounded in-flight queue
    is full.  Typed backpressure — clients back off and retry after
    ``retry_after_ms`` instead of piling onto the queue."""

    def __init__(self, inflight: int, limit: int, retry_after_ms: float = 50.0):
        super().__init__(
            f"service overloaded: {inflight} requests in flight "
            f"(admission limit {limit}); retry after {retry_after_ms:g} ms"
        )
        self.inflight = inflight
        self.limit = limit
        self.retry_after_ms = retry_after_ms


class ShardUnavailableError(ServiceError):
    """The shard owning the requested variable is marked down (draining,
    crashed, or administratively removed from the ring)."""

    def __init__(self, shard: int, var_id: str = ""):
        detail = f" (variable {var_id!r})" if var_id else ""
        super().__init__(f"shard {shard} unavailable{detail}")
        self.shard = shard
        self.var_id = var_id


# -- baselines ------------------------------------------------------------------

class BaselineError(ReproError):
    """Base for the baseline PIO library emulations (HDF5/NetCDF/ADIOS...)."""


class FormatError(BaselineError):
    """On-device file format violation."""
