"""Exception taxonomy for the reproduction stack.

Each substrate raises its own subclass so callers can distinguish, e.g., a
simulated kernel fault (``KernelError``) from a PMDK transaction abort
(``TransactionAborted``).  Everything derives from :class:`ReproError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


# -- memory / device ---------------------------------------------------------

class MemoryError_(ReproError):
    """Base for emulated-memory errors (named with underscore to avoid
    shadowing the builtin)."""


class OutOfSpaceError(MemoryError_):
    """A device, pool, or filesystem ran out of capacity."""


class BadAddressError(MemoryError_):
    """An access fell outside a mapped region or device."""


class TornWriteError(MemoryError_):
    """Crash-simulation detected data read back that was never persisted."""


# -- kernel / filesystem ------------------------------------------------------

class KernelError(ReproError):
    """Base for simulated-kernel errors; carries a POSIX-style errno name."""

    errno_name = "EIO"


class NoSuchFileError(KernelError):
    errno_name = "ENOENT"


class FileExistsError_(KernelError):
    errno_name = "EEXIST"


class IsADirectoryError_(KernelError):
    errno_name = "EISDIR"


class NotADirectoryError_(KernelError):
    errno_name = "ENOTDIR"


class BadFileDescriptorError(KernelError):
    errno_name = "EBADF"


class InvalidArgumentError(KernelError):
    errno_name = "EINVAL"


class NoSpaceError(KernelError):
    errno_name = "ENOSPC"


class NotEmptyError(KernelError):
    errno_name = "ENOTEMPTY"


# -- PMDK ---------------------------------------------------------------------

class PmdkError(ReproError):
    """Base for the emulated PMDK object store."""


class PoolCorruptError(PmdkError):
    """Pool superblock/layout validation failed."""


class TransactionAborted(PmdkError):
    """A transaction was explicitly aborted; changes were rolled back."""


class AllocationError(PmdkError):
    """The persistent allocator could not satisfy a request."""


# -- MPI ----------------------------------------------------------------------

class MPIError(ReproError):
    """Base for the simulated MPI runtime."""


class CommunicatorError(MPIError):
    """Mismatched collective participation or invalid rank."""


class CollectiveAbortedError(CommunicatorError):
    """A collective (or recv) was abandoned because a *peer* rank failed.

    Secondary casualty, never the root cause — the engine's failure
    unwinding skips these when picking the exception to surface."""


class RankFailedError(MPIError):
    """A peer rank raised; collective operations propagate this."""

    def __init__(self, rank: int, original: BaseException,
                 worker_pids: tuple[int, ...] | None = None):
        super().__init__(f"rank {rank} failed: {original!r}")
        self.rank = rank
        self.original = original
        #: PIDs of the OS-process workers (procs engine only) — lets
        #: post-mortem tooling map ranks to live/dead processes
        self.worker_pids = worker_pids


# -- rank engines --------------------------------------------------------------

class EngineUnavailableError(ReproError):
    """The requested rank engine cannot run on this platform/configuration
    (no ``fork``, no shared memory, or crash-simulation requested under the
    procs engine).  ``threads`` remains the universal default."""


class WorkerCrashedError(ReproError):
    """A procs-engine worker died without reporting a result (e.g. SIGKILL
    mid-critical-section); carries the worker's pid and wait status."""

    def __init__(self, rank: int, pid: int, status: int):
        super().__init__(
            f"rank {rank} worker (pid {pid}) died without a result "
            f"(wait status {status})"
        )
        self.rank = rank
        self.pid = pid
        self.status = status


class LockDisciplineError(ReproError):
    """The post-run lock-discipline checker found a violation: a lock-order
    cycle (potential deadlock), a metadata write outside its owning guard
    (lost-update race), or an unmatched acquire/release."""


# -- serialization / pMEMCPY ---------------------------------------------------

class SerializationError(ReproError):
    """Pack/unpack failure (format violation, short buffer, bad magic)."""


class PmemcpyError(ReproError):
    """Base for the pMEMCPY public API."""


class KeyNotFoundError(PmemcpyError, KeyError):
    """``load`` of an id that was never stored."""


class DimensionMismatchError(PmemcpyError):
    """Subarray offsets/dims incompatible with the allocated variable."""


class NotMappedError(PmemcpyError):
    """API used before ``mmap`` or after ``munmap``."""


# -- baselines ------------------------------------------------------------------

class BaselineError(ReproError):
    """Base for the baseline PIO library emulations (HDF5/NetCDF/ADIOS...)."""


class FormatError(BaselineError):
    """On-device file format violation."""
