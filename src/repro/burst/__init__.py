"""Burst-buffer drain: the paper's §3 "after serialization, a burst buffer,
such as DataWarp, will then be triggered to asynchronously flush the
buffered data to mass storage" path (extension E8)."""

from .bb import BurstBuffer, DrainReport, drain_job

__all__ = ["BurstBuffer", "DrainReport", "drain_job"]
