"""DataWarp-like asynchronous drain from node-local PMEM to the shared PFS.

After an application checkpoint lands in PMEM (fast), mover agents stream
it out to mass storage (slow) in the background.  The quantity the paper's
burst-buffer story cares about is the *drain window*: how long PMEM holds
the only copy, and hence the minimum safe checkpoint period.

``drain_job`` is an SPMD body: a subset of ranks act as movers, each
streaming its share PMEM→PFS (charged on ``pmem_read`` and ``pfs_write``).
``BurstBuffer.analyze`` turns a workload + machine into the headline
numbers (drain seconds, overlap-with-compute feasibility).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DEFAULT_MACHINE, MachineSpec
from ..mem.memcpy import charge_pfs_write, charge_pmem_read
from ..mpi import Communicator


@dataclass(frozen=True)
class DrainReport:
    total_bytes: float
    movers: int
    write_seconds: float      # time for the app to land data in PMEM
    drain_seconds: float      # time for movers to flush PMEM -> PFS
    #: smallest checkpoint period (s) that never stalls the app: the next
    #: checkpoint must not start before the previous drain finished
    min_checkpoint_period_s: float

    def speedup_vs_direct(self) -> float:
        """How much faster the app resumes vs. writing straight to the PFS."""
        direct = self.write_seconds + self.drain_seconds  # lower bound
        return direct / self.write_seconds if self.write_seconds else 0.0


def drain_job(ctx, total_real_bytes: int, movers: int | None = None) -> None:
    """SPMD body: stream ``total_real_bytes`` (functional scale) from PMEM
    to the PFS using ``movers`` agent ranks (default: all)."""
    comm = Communicator.world(ctx)
    movers = movers or comm.size
    if comm.rank < movers:
        share = total_real_bytes // movers
        if comm.rank == movers - 1:
            share += total_real_bytes - share * movers
        with ctx.phase("drain"):
            mb = ctx.model_bytes(share)
            charge_pmem_read(ctx, mb, note="drain-read")
            charge_pfs_write(ctx, mb, note="drain-write")
    comm.barrier()


class BurstBuffer:
    def __init__(self, machine: MachineSpec = DEFAULT_MACHINE):
        self.machine = machine

    def drain_seconds(self, model_bytes: float, movers: int) -> float:
        """Analytic drain time: movers share the PFS ingest limit."""
        pfs = self.machine.pfs
        agg = min(movers * pfs.stream_write_bw, pfs.write_bw)
        read_agg = min(movers * self.machine.pmem.stream_read_bw,
                       self.machine.pmem.read_bw)
        # stream through the slower of the two sides
        return model_bytes / min(agg, read_agg) / 1e9

    def analyze(
        self, model_bytes: float, write_seconds: float, movers: int
    ) -> DrainReport:
        drain = self.drain_seconds(model_bytes, movers)
        return DrainReport(
            total_bytes=model_bytes,
            movers=movers,
            write_seconds=write_seconds,
            drain_seconds=drain,
            min_checkpoint_period_s=max(write_seconds, drain),
        )
