"""Communicators and collectives.

Functionally, a collective is a rendezvous on the shared board: every member
deposits its contribution under a deterministic key (communicator identity +
a per-rank operation counter — SPMD determinism guarantees these line up),
waits for the set to fill, copies out what it needs, and the last reader
cleans up.

For timing, each collective records a Barrier op (members can't complete
before the slowest arrives) followed by per-rank ``net`` transfers sized by
what that rank sends plus what it receives — on a single node both ends of a
shared-memory pipe pay a DRAM crossing, which is exactly the rearrangement
cost the paper attributes to NetCDF/pNetCDF.
"""

from __future__ import annotations

import copy
import math

import numpy as np

from ..errors import CommunicatorError
from ..mem.memcpy import charge_cpu, charge_net


def obj_nbytes(obj) -> int:
    """Approximate wire size of a collective payload."""
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (list, tuple)):
        return sum(obj_nbytes(x) for x in obj) + 16 * len(obj)
    if isinstance(obj, dict):
        return sum(obj_nbytes(k) + obj_nbytes(v) for k, v in obj.items())
    if isinstance(obj, str):
        return len(obj.encode())
    return 64  # headers, ints, small scalars


def _received_copy(obj):
    """Receivers get their own copy (MPI semantics, no aliasing)."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    return copy.deepcopy(obj)


class Communicator:
    """A set of global ranks.  ``self.rank`` is this rank's index within the
    communicator; ``self.ranks`` maps indices to global (engine) ranks."""

    def __init__(self, ctx, ranks: tuple[int, ...] | None = None, name: str = "world"):
        self.ctx = ctx
        self.ranks = ranks if ranks is not None else tuple(range(ctx.nprocs))
        if ctx.rank not in self.ranks:
            raise CommunicatorError(
                f"rank {ctx.rank} not a member of communicator {name} {self.ranks}"
            )
        self.rank = self.ranks.index(ctx.rank)
        self.size = len(self.ranks)
        self.name = name
        self._op_seq = 0

    @classmethod
    def world(cls, ctx) -> "Communicator":
        return cls(ctx)

    def sub(self, member_indices, name: str | None = None) -> "Communicator | None":
        """Collective: build a sub-communicator from communicator-rank
        indices.  Returns None on non-members."""
        global_ranks = tuple(sorted(self.ranks[i] for i in member_indices))
        self.barrier()
        if self.ctx.rank not in global_ranks:
            return None
        return Communicator(
            self.ctx, global_ranks, name or f"{self.name}.sub{len(global_ranks)}"
        )

    # ------------------------------------------------------------------ rendezvous

    def _next_key(self, op: str):
        self._op_seq += 1
        return ("mpi", self.name, self.ranks, self._op_seq, op)

    def _exchange(self, op: str, contribution) -> dict[int, object]:
        """All members deposit; returns {comm_rank: contribution}.

        Thread engine: references move through the in-process board (the
        receive paths copy).  Procs engine: contributions travel as pickled
        blobs in shared-memory buffers — receivers inherently get copies.
        A peer-rank failure surfaces as
        :class:`~repro.errors.CollectiveAbortedError` (a casualty the
        engine's root-cause unwinding skips).
        """
        key = self._next_key(op)
        return self.ctx.board.exchange(key, self.rank, self.size, contribution)

    # ------------------------------------------------------------------ collectives

    def barrier(self) -> None:
        self.ctx.barrier(self.ranks)

    def _log_rounds(self) -> int:
        return max(1, math.ceil(math.log2(max(self.size, 2))))

    def bcast(self, obj, root: int = 0):
        if self.size == 1:
            return obj
        self.barrier()
        vals = self._exchange("bcast", obj if self.rank == root else None)
        payload = vals[root]
        nbytes = self.ctx.model_bytes(obj_nbytes(payload))
        charge_net(self.ctx, nbytes, messages=self._log_rounds(), note="bcast")
        if self.rank == root:
            return obj
        return _received_copy(payload)

    def scatter(self, objs, root: int = 0):
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise CommunicatorError(
                    f"scatter root needs {self.size} items, got "
                    f"{None if objs is None else len(objs)}"
                )
        if self.size == 1:
            return objs[0]
        self.barrier()
        vals = self._exchange("scatter", objs if self.rank == root else None)
        mine = vals[root][self.rank]
        if self.rank == root:
            total = sum(obj_nbytes(o) for o in objs)
            charge_net(
                self.ctx, self.ctx.model_bytes(total),
                messages=self.size - 1, note="scatter",
            )
            return mine
        charge_net(
            self.ctx, self.ctx.model_bytes(obj_nbytes(mine)),
            messages=1, note="scatter",
        )
        return _received_copy(mine)

    def gather(self, obj, root: int = 0):
        if self.size == 1:
            return [obj]
        self.barrier()
        vals = self._exchange("gather", obj)
        if self.rank == root:
            total = sum(obj_nbytes(v) for r, v in vals.items() if r != root)
            charge_net(
                self.ctx, self.ctx.model_bytes(total),
                messages=self.size - 1, note="gather",
            )
            return [
                vals[r] if r == root else _received_copy(vals[r])
                for r in range(self.size)
            ]
        charge_net(
            self.ctx, self.ctx.model_bytes(obj_nbytes(obj)),
            messages=1, note="gather",
        )
        return None

    def allgather(self, obj) -> list:
        if self.size == 1:
            return [obj]
        self.barrier()
        vals = self._exchange("allgather", obj)
        total = sum(obj_nbytes(v) for v in vals.values())
        charge_net(
            self.ctx, self.ctx.model_bytes(total),
            messages=self._log_rounds(), note="allgather",
        )
        return [
            vals[r] if r == self.rank else _received_copy(vals[r])
            for r in range(self.size)
        ]

    def alltoall(self, send: list) -> list:
        """``send[i]`` goes to comm rank ``i``; returns what each sent us."""
        if len(send) != self.size:
            raise CommunicatorError(
                f"alltoall needs {self.size} items, got {len(send)}"
            )
        if self.size == 1:
            return [send[0]]
        self.barrier()
        vals = self._exchange("alltoall", send)
        out = []
        recv_bytes = 0
        msgs = 0
        for r in range(self.size):
            item = vals[r][self.rank]
            if r == self.rank:
                out.append(item)
            else:
                out.append(_received_copy(item))
                n = obj_nbytes(item)
                recv_bytes += n
                if n:
                    msgs += 1
        sent_bytes = sum(
            obj_nbytes(send[r]) for r in range(self.size) if r != self.rank
        )
        msgs += sum(
            1 for r in range(self.size)
            if r != self.rank and obj_nbytes(send[r])
        )
        charge_net(
            self.ctx,
            self.ctx.model_bytes(sent_bytes + recv_bytes),
            messages=msgs,
            note="alltoall",
        )
        return out

    def allreduce(self, array: np.ndarray, op=np.add) -> np.ndarray:
        if self.size == 1:
            return np.asarray(array).copy()
        self.barrier()
        vals = self._exchange("allreduce", np.asarray(array))
        result = vals[0].copy()
        for r in range(1, self.size):
            result = op(result, vals[r])
        rounds = self._log_rounds()
        nbytes = self.ctx.model_bytes(obj_nbytes(np.asarray(array)))
        charge_net(self.ctx, nbytes * rounds, messages=rounds, note="allreduce")
        # the elementwise combine itself (memory-bound vector op)
        charge_cpu(self.ctx, nbytes * rounds, 5.0, note="reduce")
        return result

    def reduce(self, array: np.ndarray, root: int = 0, op=np.add) -> np.ndarray | None:
        """Rooted reduction; non-roots get None."""
        if self.size == 1:
            return np.asarray(array).copy()
        self.barrier()
        vals = self._exchange("reduce", np.asarray(array))
        rounds = self._log_rounds()
        nbytes = self.ctx.model_bytes(obj_nbytes(np.asarray(array)))
        # tree reduction: every rank forwards ~once, root combines log P times
        charge_net(self.ctx, nbytes, messages=1, note="reduce")
        if self.rank != root:
            return None
        charge_net(self.ctx, nbytes * (rounds - 1), messages=rounds - 1,
                   note="reduce")
        charge_cpu(self.ctx, nbytes * rounds, 5.0, note="reduce")
        result = vals[0].copy()
        for r in range(1, self.size):
            result = op(result, vals[r])
        return result

    def scan(self, array: np.ndarray, op=np.add, *, exclusive: bool = False) -> np.ndarray:
        """Inclusive prefix reduction (MPI_Scan); ``exclusive=True`` gives
        MPI_Exscan (rank 0 receives zeros)."""
        arr = np.asarray(array)
        if self.size == 1:
            return np.zeros_like(arr) if exclusive else arr.copy()
        self.barrier()
        vals = self._exchange("scan", arr)
        rounds = self._log_rounds()
        nbytes = self.ctx.model_bytes(obj_nbytes(arr))
        charge_net(self.ctx, nbytes * rounds, messages=rounds, note="scan")
        charge_cpu(self.ctx, nbytes * rounds, 5.0, note="reduce")
        upto = self.rank if exclusive else self.rank + 1
        if upto == 0:
            return np.zeros_like(arr)
        result = vals[0].copy()
        for r in range(1, upto):
            result = op(result, vals[r])
        return result

    def exscan(self, array: np.ndarray, op=np.add) -> np.ndarray:
        return self.scan(array, op, exclusive=True)

    def gatherv(self, obj, root: int = 0) -> list | None:
        """Variable-size gather (sizes need not match across ranks — the
        charging already sizes per contribution)."""
        return self.gather(obj, root)

    def scatterv(self, objs, root: int = 0):
        """Variable-size scatter."""
        return self.scatter(objs, root)

    # ------------------------------------------------------------------ point-to-point

    def send(self, obj, dest: int, tag: int = 0) -> None:
        """Rendezvous send (models MPI_Send's synchronization as a 2-party
        barrier — documented over-synchronization)."""
        self._p2p(dest, tag, obj, sending=True)

    def recv(self, source: int, tag: int = 0):
        return self._p2p(source, tag, None, sending=False)

    def _p2p(self, peer: int, tag: int, obj, *, sending: bool):
        if peer == self.rank or not (0 <= peer < self.size):
            raise CommunicatorError(f"bad peer {peer}")
        pair = tuple(sorted((self.ranks[self.rank], self.ranks[peer])))
        self.ctx.barrier(pair)
        board = self.ctx.board
        lo = self.rank < peer
        key = ("p2p", self.name, pair, tag, "lo2hi" if (sending == lo) else "hi2lo")
        if sending:
            board.p2p_put(key, obj)
            charge_net(
                self.ctx, self.ctx.model_bytes(obj_nbytes(obj)),
                messages=1, note="send",
            )
            return None
        obj = board.p2p_take(key)
        charge_net(
            self.ctx, self.ctx.model_bytes(obj_nbytes(obj)),
            messages=1, note="recv",
        )
        return _received_copy(obj)
