"""Cartesian process topology (MPI_Cart_create and friends) — the natural
companion to the paper's 3-D domain decomposition workload."""

from __future__ import annotations

import math

from ..errors import CommunicatorError
from ..workloads.decomp import coords_of, proc_grid
from .comm import Communicator


class CartComm:
    """A Cartesian view over a communicator (non-periodic by default)."""

    def __init__(self, comm: Communicator, dims=None, periods=None):
        self.comm = comm
        if dims is None:
            dims = proc_grid(comm.size, 3)
        self.dims = tuple(int(d) for d in dims)
        if math.prod(self.dims) != comm.size:
            raise CommunicatorError(
                f"grid {self.dims} does not tile {comm.size} ranks"
            )
        self.periods = tuple(periods) if periods else tuple(
            False for _ in self.dims
        )
        if len(self.periods) != len(self.dims):
            raise CommunicatorError("periods rank mismatch")
        self.coords = coords_of(comm.rank, self.dims)

    # ------------------------------------------------------------------ mapping

    def rank_of(self, coords) -> int:
        """MPI_Cart_rank (honoring periodicity)."""
        coords = list(coords)
        for i, (c, d, p) in enumerate(zip(coords, self.dims, self.periods)):
            if p:
                coords[i] = c % d
            elif not 0 <= c < d:
                raise CommunicatorError(
                    f"coordinate {c} outside non-periodic dim {i} of size {d}"
                )
        rank = 0
        for c, d in zip(coords, self.dims):
            rank = rank * d + c
        return rank

    def coords_of(self, rank: int):
        """MPI_Cart_coords."""
        return coords_of(rank, self.dims)

    def shift(self, axis: int, displacement: int = 1) -> tuple[int | None, int | None]:
        """MPI_Cart_shift: (source, dest) neighbor ranks along ``axis``;
        None at a non-periodic boundary (MPI_PROC_NULL)."""
        if not 0 <= axis < len(self.dims):
            raise CommunicatorError(f"bad axis {axis}")

        def neighbor(delta: int) -> int | None:
            c = list(self.coords)
            c[axis] += delta
            if self.periods[axis]:
                c[axis] %= self.dims[axis]
            elif not 0 <= c[axis] < self.dims[axis]:
                return None
            return self.rank_of(c)

        return neighbor(-displacement), neighbor(displacement)

    # ------------------------------------------------------------------ halo helper

    def sendrecv_halo(self, send_down, send_up, axis: int):
        """Exchange boundary slabs with both neighbors along ``axis``;
        returns (from_down, from_up) — None at open boundaries.

        Deadlock-free ordering: even coordinates talk down first, odd talk
        up first.  (This parity scheme requires even extents on *periodic*
        axes — the classic red/black constraint.)
        """
        if self.periods[axis] and self.dims[axis] % 2:
            raise CommunicatorError(
                "sendrecv_halo needs an even extent on a periodic axis "
                "(red/black pairing)"
            )
        down, up = self.shift(axis)
        from_down = from_up = None
        first_down = self.coords[axis] % 2 == 0
        for phase in (0, 1):
            talk_down = (phase == 0) == first_down
            if talk_down:
                if down is not None:
                    self.comm.send(send_down, dest=down, tag=10 + axis)
                    from_down = self.comm.recv(source=down, tag=20 + axis)
            else:
                if up is not None:
                    self.comm.send(send_up, dest=up, tag=20 + axis)
                    from_up = self.comm.recv(source=up, tag=10 + axis)
        return from_down, from_up
