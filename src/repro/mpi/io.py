"""MPI-IO over the simulated VFS: independent I/O and ROMIO-style two-phase
collective buffering.

The collective path is the heart of the NetCDF/pNetCDF cost story (paper
§4.1): linearizing a 3-D decomposition into a contiguous file layout forces
an all-to-all *data rearrangement* to aggregator ranks, which stage the
bytes in DRAM and issue large merged POSIX writes.  pMEMCPY and ADIOS skip
all of this by writing process-local data.
"""

from __future__ import annotations

import numpy as np

from ..kernel.vfs import VFS, OpenFlags
from ..mem.memcpy import charge_dram_copy
from .comm import Communicator

#: default number of collective-buffering aggregators (ROMIO cb_nodes);
#: bounded by the communicator size at use.
DEFAULT_CB_NODES = 16
#: collective buffer stripe per aggregator per round (ROMIO cb_buffer_size)
CB_ALIGN = 4096


def merge_extents(pairs: list[tuple[int, np.ndarray]]) -> list[tuple[int, np.ndarray]]:
    """Merge (offset, bytes) extents into maximal contiguous runs.
    Overlaps resolve last-writer-wins in input order."""
    if not pairs:
        return []
    indexed = sorted(range(len(pairs)), key=lambda i: (pairs[i][0], i))
    out: list[tuple[int, int, list[int]]] = []  # (lo, hi, member indices)
    for i in indexed:
        off = pairs[i][0]
        end = off + len(pairs[i][1])
        if out and off <= out[-1][1]:
            lo, hi, members = out[-1]
            out[-1] = (lo, max(hi, end), members + [i])
        else:
            out.append((off, end, [i]))
    merged: list[tuple[int, np.ndarray]] = []
    for lo, hi, members in out:
        buf = np.zeros(hi - lo, dtype=np.uint8)
        members.sort()  # input order for last-writer-wins
        for i in members:
            off, data = pairs[i]
            d = np.asarray(data).reshape(-1).view(np.uint8)
            buf[off - lo : off - lo + d.size] = d
        merged.append((lo, buf))
    return merged


class MPIFile:
    """A collectively-opened file handle."""

    def __init__(self, comm: Communicator, vfs: VFS, path: str, fd: int,
                 cb_nodes: int):
        self.comm = comm
        self.vfs = vfs
        self.path = path
        self.fd = fd
        self.cb_nodes = min(cb_nodes, comm.size)

    @classmethod
    def open(
        cls,
        ctx,
        comm: Communicator,
        vfs: VFS,
        path: str,
        flags: OpenFlags = OpenFlags.RDWR | OpenFlags.CREAT,
        *,
        cb_nodes: int = DEFAULT_CB_NODES,
    ) -> "MPIFile":
        """Collective open: rank 0 creates, everyone opens."""
        if comm.rank == 0:
            fd = vfs.open(ctx, path, flags)
            comm.barrier()
        else:
            comm.barrier()
            fd = vfs.open(ctx, path, flags & ~OpenFlags.TRUNC & ~OpenFlags.EXCL)
        return cls(comm, vfs, path, fd, cb_nodes)

    def close(self, ctx) -> None:
        self.comm.barrier()
        self.vfs.close(ctx, self.fd)

    def sync(self, ctx) -> None:
        self.vfs.fsync(ctx, self.fd)

    def set_size(self, ctx, size: int) -> None:
        """Collective resize (rank 0 acts)."""
        if self.comm.rank == 0:
            self.vfs.ftruncate(ctx, self.fd, size)
        self.comm.barrier()

    # ------------------------------------------------------------------ independent

    def write_at(self, ctx, offset: int, data, *, model_bytes: float | None = None) -> int:
        return self.vfs.pwrite(ctx, self.fd, data, offset, model_bytes=model_bytes)

    def read_at(self, ctx, offset: int, size: int, *, model_bytes: float | None = None) -> np.ndarray:
        return self.vfs.pread(ctx, self.fd, size, offset, model_bytes=model_bytes)

    # ------------------------------------------------------------------ two-phase collective

    def _file_domain(self, ctx, extents_span: tuple[int, int]) -> tuple[int, int, int]:
        """Agree on [lo, hi) and the per-aggregator stripe size."""
        lo_hi = self.comm.allreduce(
            np.array([extents_span[0], -extents_span[1]], dtype=np.int64),
            op=np.minimum,
        )
        lo, hi = int(lo_hi[0]), int(-lo_hi[1])
        if hi <= lo:  # nobody has data this round
            return 0, 0, CB_ALIGN
        naggr = max(1, self.cb_nodes)
        stripe = -(-(hi - lo) // naggr)
        stripe = -(-stripe // CB_ALIGN) * CB_ALIGN
        return lo, hi, stripe

    def _split_by_aggregator(
        self, lo: int, stripe: int, extents: list[tuple[int, np.ndarray]]
    ) -> list[list[tuple[int, np.ndarray]]]:
        """Partition extents (splitting at stripe boundaries) per aggregator."""
        buckets: list[list[tuple[int, np.ndarray]]] = [
            [] for _ in range(self.comm.size)
        ]
        naggr = max(1, self.cb_nodes)
        for off, data in extents:
            d = np.asarray(data).reshape(-1).view(np.uint8)
            pos = 0
            while pos < d.size:
                a = (off + pos - lo) // stripe
                a = min(int(a), naggr - 1)
                stripe_end = lo + (a + 1) * stripe
                take = min(d.size - pos, stripe_end - (off + pos))
                buckets[a].append((off + pos, d[pos : pos + take]))
                pos += take
        return buckets

    def write_at_all(self, ctx, extents: list[tuple[int, np.ndarray]]) -> int:
        """Collective write of this rank's (offset, data) extents.

        Two-phase: exchange extents to aggregator ranks (charged as the
        rearrangement all-to-all), aggregators merge in DRAM collective
        buffers and issue large writes.
        """
        total = sum(np.asarray(d).nbytes for _o, d in extents)
        span = self._span(extents)
        lo, hi, stripe = self._file_domain(ctx, span)
        buckets = self._split_by_aggregator(lo, stripe, extents)
        incoming = self.comm.alltoall(buckets)
        written = 0
        mine: list[tuple[int, np.ndarray]] = [
            e for sublist in incoming for e in sublist
        ]
        if mine:
            merged = merge_extents(mine)
            for off, buf in merged:
                # collective-buffer assembly is a DRAM staging copy
                charge_dram_copy(
                    ctx, ctx.model_bytes(buf.size), note="cb-assemble"
                )
                self.vfs.pwrite(
                    ctx, self.fd, buf, off,
                    model_bytes=ctx.model_bytes(buf.size),
                )
                written += buf.size
        self.comm.barrier()
        return total

    def read_at_all(
        self, ctx, requests: list[tuple[int, int]]
    ) -> list[np.ndarray]:
        """Collective read: aggregators read merged stripes and ship the
        requested pieces back (two-phase in reverse)."""
        span = self._span_req(requests)
        lo, hi, stripe = self._file_domain(ctx, span)
        naggr = max(1, self.cb_nodes)
        # each rank tells each aggregator which (offset, size) it wants
        want: list[list[tuple[int, int]]] = [[] for _ in range(self.comm.size)]
        order: list[tuple[int, int, int]] = []  # (aggr, index within aggr req)
        for off, size in requests:
            pos = 0
            while pos < size:
                a = min(int((off + pos - lo) // stripe), naggr - 1)
                stripe_end = lo + (a + 1) * stripe
                take = min(size - pos, stripe_end - (off + pos))
                order.append((a, len(want[a]), take))
                want[a].append((off + pos, take))
                pos += take
        reqs_in = self.comm.alltoall(want)
        # aggregator: one sieving read over the union of ALL ranks' requests
        # in my file domain, then serve every requester from that buffer
        all_reqs = [(o, s) for rr in reqs_in for (o, s) in rr]
        replies: list[list[np.ndarray]] = [[] for _ in range(self.comm.size)]
        if all_reqs:
            lo_r = min(o for o, _s in all_reqs)
            hi_r = max(o + s for o, s in all_reqs)
            buf = self.vfs.pread(
                ctx, self.fd, hi_r - lo_r, lo_r,
                model_bytes=ctx.model_bytes(hi_r - lo_r),
            )
            charge_dram_copy(
                ctx, ctx.model_bytes(buf.size), note="cb-assemble"
            )
            for r in range(self.comm.size):
                for o, s in reqs_in[r]:
                    replies[r].append(buf[o - lo_r : o - lo_r + s])
        got = self.comm.alltoall(replies)
        # reassemble this rank's requests in order
        pieces: list[list[np.ndarray]] = [[] for _ in requests]
        taken = [0] * self.comm.size
        for i, (off, size) in enumerate(requests):
            pos = 0
            while pos < size:
                a = min(int((off + pos - lo) // stripe), naggr - 1)
                stripe_end = lo + (a + 1) * stripe
                take = min(size - pos, stripe_end - (off + pos))
                pieces[i].append(got[a][taken[a]])
                taken[a] += 1
                pos += take
        self.comm.barrier()
        return [
            np.concatenate(ps) if len(ps) != 1 else ps[0] for ps in pieces
        ]

    @staticmethod
    def _span(extents) -> tuple[int, int]:
        if not extents:
            return (2**62, -(2**62))
        lo = min(off for off, _d in extents)
        hi = max(off + np.asarray(d).nbytes for off, d in extents)
        return lo, hi

    @staticmethod
    def _span_req(requests) -> tuple[int, int]:
        if not requests:
            return (2**62, -(2**62))
        lo = min(off for off, _s in requests)
        hi = max(off + s for off, s in requests)
        return lo, hi
