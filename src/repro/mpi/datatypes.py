"""Subarray ↔ linear-file layout math (MPI_Type_create_subarray's job).

A *block* subarray of a row-major global array flattens to a set of equal
contiguous runs.  ``subarray_runs`` gives the (count, bytes-per-run) summary
— what the charging model needs at paper scale without materializing
millions of extents — and ``subarray_run_starts`` gives the actual start
offsets for functional data movement at the scaled-down size.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import DimensionMismatchError


def _validate(global_dims, offsets, local_dims) -> None:
    if not (len(global_dims) == len(offsets) == len(local_dims)):
        raise DimensionMismatchError(
            f"rank mismatch: {global_dims} / {offsets} / {local_dims}"
        )
    for g, o, l in zip(global_dims, offsets, local_dims):
        if l < 0 or o < 0 or o + l > g:
            raise DimensionMismatchError(
                f"subarray (offset {offsets}, dims {local_dims}) exceeds "
                f"global {global_dims}"
            )


def _contig_depth(global_dims, offsets, local_dims) -> int:
    """Index ``i`` of the outermost dimension folded into one run: dims
    ``i..ndim-1`` contribute contiguous bytes (trailing dims fully spanned,
    plus the first partial one)."""
    i = len(global_dims) - 1
    while i > 0 and local_dims[i] == global_dims[i] and offsets[i] == 0:
        i -= 1
    return i


def subarray_runs(
    global_dims, offsets, local_dims, itemsize: int
) -> tuple[int, int]:
    """(number of contiguous runs, bytes per run) for the block subarray."""
    _validate(global_dims, offsets, local_dims)
    if 0 in local_dims:
        return 0, 0
    i = _contig_depth(global_dims, offsets, local_dims)
    run_elems = math.prod(local_dims[i:])
    nruns = math.prod(local_dims[:i]) if i > 0 else 1
    return nruns, run_elems * itemsize


def subarray_run_starts(global_dims, offsets, local_dims, itemsize: int) -> np.ndarray:
    """Byte offsets (into the linearized global array) of each run, in the
    order the subarray's elements appear in C order.  Length equals the run
    count from :func:`subarray_runs`."""
    _validate(global_dims, offsets, local_dims)
    if 0 in local_dims:
        return np.empty(0, dtype=np.int64)
    ndim = len(global_dims)
    i = _contig_depth(global_dims, offsets, local_dims)
    strides = np.ones(ndim, dtype=np.int64)
    for d in range(ndim - 2, -1, -1):
        strides[d] = strides[d + 1] * global_dims[d + 1]
    base = sum(int(offsets[d]) * int(strides[d]) for d in range(ndim))
    if i == 0:
        return np.array([base * itemsize], dtype=np.int64)
    # outer index grid over dims [0, i)
    grids = np.indices(tuple(local_dims[:i]), dtype=np.int64)
    starts = np.full(grids.shape[1:], base, dtype=np.int64)
    for d in range(i):
        starts = starts + grids[d] * strides[d]
    return (starts.reshape(-1) * itemsize).astype(np.int64)


def scatter_subarray(
    global_flat: np.ndarray,
    local: np.ndarray,
    global_dims,
    offsets,
) -> None:
    """Paste ``local`` (a block) into a flat byte/element view of the global
    array — the functional half of a strided file write."""
    g = np.asarray(global_flat).reshape(tuple(global_dims))
    sl = tuple(slice(o, o + l) for o, l in zip(offsets, local.shape))
    g[sl] = local


def gather_subarray(
    global_flat: np.ndarray,
    global_dims,
    offsets,
    local_dims,
) -> np.ndarray:
    """Extract a block subarray from a flat view of the global array."""
    g = np.asarray(global_flat).reshape(tuple(global_dims))
    sl = tuple(slice(o, o + l) for o, l in zip(offsets, local_dims))
    return np.ascontiguousarray(g[sl])
