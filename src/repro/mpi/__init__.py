"""Simulated MPI: communicators, collectives, subarray datatypes, MPI-IO.

Ranks are the SPMD engine's threads; collectives move *real* data between
rank address spaces through the shared board and charge the intra-node
transport model (two DRAM crossings + per-message software latency — the
paper's single-node "network communication" cost that rearranging libraries
pay and pMEMCPY avoids).

Timing semantics: every collective records a Barrier op before its
transfers, which over-synchronizes slightly relative to real MPI but keeps
the two-pass simulation exact; point-to-point send/recv is modeled as a
two-party barrier plus paired transfers (documented approximation).
"""

from .comm import Communicator
from .datatypes import subarray_run_starts, subarray_runs
from .io import MPIFile, merge_extents
# cart last: it reaches into repro.workloads for the grid math, which
# circularly needs Communicator to already be bound here
from .cart import CartComm

__all__ = [
    "CartComm",
    "Communicator",
    "subarray_runs",
    "subarray_run_starts",
    "MPIFile",
    "merge_extents",
]
