"""E1 — Figure 6: write time of a 40 GB 3-D domain vs. process count, for
ADIOS, NetCDF, pNetCDF, PMCPY-A (MAP_SYNC off) and PMCPY-B (MAP_SYNC on).

Paper claims reproduced: pMEMCPY ≈2.5× faster than NetCDF/pNetCDF; ~15%
faster than ADIOS at 24 cores with MAP_SYNC off, slightly slower than ADIOS
with it on; scaling flattens past 24 (physical cores) except PMCPY-B.
"""

from conftest import emit

from repro.harness import run_sweep
from repro.harness.experiment import series_from
from repro.harness.figures import ascii_chart, render_table, series_to_rows, write_csv
from repro.workloads import Domain3D


def run_fig6():
    workload = Domain3D()
    results = run_sweep(workload=workload, directions=("write",))
    return series_from(results, "write"), workload


def test_fig6_writes(once):
    series, workload = once(run_fig6)
    rows = series_to_rows(series)
    text = ascii_chart(
        f"Fig. 6: writing a {workload.model_total_bytes / 1e9:.0f} GB 3-D "
        f"domain to PMEM (modeled seconds)",
        series,
    )
    text += "\n\n" + render_table(
        "Fig. 6 data", ["library", "nprocs", "seconds"], rows
    )
    emit("fig6_writes", text)
    write_csv("results/fig6_writes.csv", ["library", "nprocs", "seconds"], rows)

    # the paper's qualitative claims, asserted
    a, b = series["PMCPY-A"], series["PMCPY-B"]
    adios, netcdf, pnetcdf = series["ADIOS"], series["NetCDF"], series["pNetCDF"]
    for p in (16, 24, 32, 48):
        assert a[p] < adios[p] < netcdf[p]
        assert a[p] < pnetcdf[p]
    # ~2.5x vs NetCDF at 24, within a band
    assert 1.8 <= netcdf[24] / a[24] <= 3.2
    # ~15% vs ADIOS at 24
    assert 1.05 <= adios[24] / a[24] <= 1.45
    # MAP_SYNC erases the advantage (B is not better than ADIOS-level)
    assert b[24] >= 0.9 * adios[24]
    # concurrency effects wear off: 24 -> 48 changes PMCPY-A by < 20%
    assert abs(a[48] - a[24]) / a[24] < 0.2
    # PMCPY-B keeps improving past 24 (parallelized metadata updates)
    assert b[48] < b[24]
