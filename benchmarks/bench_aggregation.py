"""E-aggr — ADIOS aggregation ablation: the MPI_AGGREGATE-style N:M
transport, which serializes device access through few writers.  On a PFS
(per-stream-limited, metadata-heavy) this wins; on node-local PMEM it
*wastes* device parallelism — reinforcing the paper's thesis that PMEM
rewards direct per-process access."""

from conftest import emit

from repro.harness import run_io_experiment
from repro.harness.figures import render_table, write_csv
from repro.workloads import Domain3D


def run_matrix():
    w = Domain3D()
    rows = []
    for p in (24, 48):
        for aggr in (None, 8, 4):
            res = run_io_experiment(
                "ADIOS", p, w,
                directions=("write",),
                driver_override=("adios", {"aggregation": aggr}),
            )
            rows.append((
                p, "per-process" if aggr is None else f"{aggr} aggregators",
                f"{res[0].seconds:.2f}s",
            ))
    return rows


def test_aggregation_ablation(once):
    rows = once(run_matrix)
    text = render_table(
        "E-aggr: ADIOS per-process vs aggregated writes to PMEM (40 GB)",
        ["nprocs", "transport", "write time"],
        rows,
    )
    emit("aggregation", text)
    write_csv("results/aggregation.csv",
              ["nprocs", "transport", "seconds"], rows)
    t = {(r[0], r[1]): float(r[2][:-1]) for r in rows}
    # aggregation throttles PMEM's concurrency: fewer streams -> slower
    assert t[(48, "per-process")] < t[(48, "4 aggregators")]
    assert t[(48, "8 aggregators")] < t[(48, "4 aggregators")]
