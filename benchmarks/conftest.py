"""Shared helpers for the benchmark suite.

Every benchmark regenerates one paper artifact (figure/table) or one
ablation; the rendered output goes to stdout *and* ``results/`` so it
survives pytest's capture.  Run with::

    pytest benchmarks/ --benchmark-only
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


def emit(name: str, text: str) -> None:
    """Print a rendered artifact and persist it under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    print(f"\n{text}\n[saved {os.path.normpath(path)}]")


@pytest.fixture
def once(benchmark):
    """Run the (deterministic) experiment exactly once under the benchmark
    fixture; repeated rounds would only re-measure simulator wall time."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _run
