"""Microbenchmarks of the PMDK substrate itself (real wall-time, where
pytest-benchmark's statistics are meaningful): hashtable puts/gets,
allocator malloc/free churn, transaction commit overhead."""

import numpy as np

from repro.mem import PMEMDevice
from repro.pmdk import PmemHashmap, PmemPool, RawRegion, Transaction
from repro.sim import run_spmd
from repro.units import MiB


def make_pool(size=16 * MiB):
    device = PMEMDevice(size)
    region = RawRegion(device, 0, size)
    holder = {}

    def fn(ctx):
        holder["pool"] = PmemPool.create(ctx, region, size=size, nlanes=4)

    run_spmd(1, fn)
    return holder["pool"]


def test_hashmap_put_get(benchmark):
    pool = make_pool()
    holder = {}

    def setup(ctx):
        holder["map"] = PmemHashmap.create(ctx, pool, nbuckets=64)

    run_spmd(1, setup)
    m = holder["map"]
    keys = [f"key-{i}".encode() for i in range(200)]
    payload = bytes(64)

    def work():
        def fn(ctx):
            for k in keys:
                m.put(ctx, k, payload)
            for k in keys:
                assert m.get(ctx, k) is not None

        run_spmd(1, fn)

    benchmark(work)


def test_allocator_churn(benchmark):
    pool = make_pool()

    def work():
        def fn(ctx):
            live = []
            for i in range(300):
                live.append(pool.malloc(ctx, 64 + (i % 7) * 512))
                if len(live) > 40:
                    pool.free(ctx, live.pop(0))
            for off in live:
                pool.free(ctx, off)

        run_spmd(1, fn)

    benchmark(work)


def test_transaction_commit(benchmark):
    pool = make_pool()
    holder = {}

    def setup(ctx):
        holder["off"] = pool.malloc(ctx, 4096)

    run_spmd(1, setup)
    off = holder["off"]
    blob = np.random.default_rng(0).integers(0, 255, 512, dtype=np.uint8)

    def work():
        def fn(ctx):
            for _ in range(50):
                with Transaction(pool, ctx) as tx:
                    tx.write(off, blob)

        run_spmd(1, fn)

    benchmark(work)
