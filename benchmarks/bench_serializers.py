"""E5 — serializer ablation (§3): pMEMCPY with BP4 (default), Cap'n-Proto-
like, cereal-like, and raw ("serialization completely disabled"), at the
24-proc sweet spot."""

from conftest import emit

from repro.harness import render_table, run_io_experiment
from repro.harness.figures import write_csv
from repro.workloads import Domain3D

SERIALIZERS = ("bp4", "cproto", "cereal", "raw")


def run_ablation():
    w = Domain3D()
    rows = []
    for ser in SERIALIZERS:
        res = run_io_experiment(
            "PMCPY-A", 24, w,
            driver_override=("pmemcpy", {"serializer": ser}),
        )
        secs = {r.direction: r.seconds for r in res}
        rows.append((ser, f"{secs['write']:.2f}s", f"{secs['read']:.2f}s"))
    return rows


def test_serializer_ablation(once):
    rows = once(run_ablation)
    text = render_table(
        "E5: serializer ablation — pMEMCPY @24 procs, 40 GB domain",
        ["serializer", "write", "read"],
        rows,
    )
    emit("serializer_ablation", text)
    write_csv("results/serializer_ablation.csv",
              ["serializer", "write_s", "read_s"], rows)
    by = {r[0]: (float(r[1][:-1]), float(r[2][:-1])) for r in rows}
    # raw (no serialization) is the fastest; bp4 (min/max characteristics)
    # costs the most CPU
    assert by["raw"][0] <= by["cproto"][0] <= by["bp4"][0]
    assert by["raw"][1] <= by["bp4"][1]
