"""E6 — data-layout ablation (§3): pMEMCPY's PMDK hashtable (flat
namespace) vs the hierarchical filesystem layout, sweeping the variable
count (the axis where metadata-path differences show)."""

from conftest import emit

import numpy as np

from repro.cluster import Cluster
from repro.harness.figures import render_table, write_csv
from repro.mpi import Communicator
from repro.pmemcpy import PMEM
from repro.units import MiB


def job(ctx, layout, nvars, elems):
    comm = Communicator.world(ctx)
    pmem = PMEM(layout=layout)
    pmem.mmap(f"/pmem/{layout}{nvars}", comm)
    data = np.zeros(elems)
    for i in range(nvars):
        if i % comm.size == comm.rank:
            pmem.store(f"grp{i % 7}/var{i:05d}", data)
    comm.barrier()
    # metadata-heavy read side: list + load a sample
    names = pmem.list_variables()
    assert len(names) == nvars
    pmem.load(names[0])
    pmem.munmap()


def run_ablation():
    # scale=1 with tiny variables: the *metadata path* dominates, which is
    # exactly where the two layouts differ (hashtable probes + pool
    # transactions vs file creation + directory syscalls)
    rows = []
    for nvars in (10, 100, 500):
        for layout in ("hashtable", "hierarchical"):
            cl = Cluster(scale=1, pmem_capacity=128 * MiB)
            res = cl.run(8, lambda ctx: job(ctx, layout, nvars, 64))
            rows.append((nvars, layout, f"{res.makespan_s * 1e3:.2f}ms"))
    return rows


def test_layout_ablation(once):
    rows = once(run_ablation)
    text = render_table(
        "E6: layout ablation — metadata-bound store+list+load, 8 procs",
        ["nvars", "layout", "modeled time"],
        rows,
    )
    emit("layout_ablation", text)
    write_csv("results/layout_ablation.csv",
              ["nvars", "layout", "ms"], rows)
    # both layouts complete and scale with variable count
    t = {(r[0], r[1]): float(r[2][:-2]) for r in rows}
    assert t[(500, "hashtable")] > t[(10, "hashtable")]
    assert t[(500, "hierarchical")] > t[(10, "hierarchical")]
    # the layouts genuinely differ on the metadata path
    assert t[(500, "hashtable")] != t[(500, "hierarchical")]
