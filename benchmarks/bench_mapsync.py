"""E4 — MAP_SYNC ablation (§4.1): the crash-consistency flag's latency
penalty across process counts, isolated on pMEMCPY (PMCPY-A vs PMCPY-B).

The paper: "the choice of flags has a significant impact on performance.
When MAP_SYNC is enabled, the performance benefit of serializing/
deserializing directly from PMEM is completely lost."
"""

from conftest import emit

from repro.harness import run_io_experiment, render_table
from repro.harness.figures import write_csv
from repro.workloads import Domain3D


def run_ablation():
    w = Domain3D()
    rows = []
    for p in (8, 24, 48):
        a = {r.direction: r.seconds for r in run_io_experiment("PMCPY-A", p, w)}
        b = {r.direction: r.seconds for r in run_io_experiment("PMCPY-B", p, w)}
        for d in ("write", "read"):
            rows.append((
                p, d, f"{a[d]:.2f}s", f"{b[d]:.2f}s",
                f"{(b[d] / a[d] - 1) * 100:.0f}%",
            ))
    return rows


def test_mapsync_ablation(once):
    rows = once(run_ablation)
    text = render_table(
        "E4: MAP_SYNC ablation — PMCPY-A (off) vs PMCPY-B (on)",
        ["nprocs", "direction", "MAP_SYNC off", "MAP_SYNC on", "penalty"],
        rows,
    )
    emit("mapsync_ablation", text)
    write_csv(
        "results/mapsync_ablation.csv",
        ["nprocs", "direction", "off_s", "on_s", "penalty_pct"],
        rows,
    )
    # the penalty exists everywhere and shrinks with rank count (the
    # parallelized-metadata-updates effect)
    penalties = {(r[0], r[1]): float(r[4].rstrip("%")) for r in rows}
    for key, pen in penalties.items():
        assert pen > 0, f"no MAP_SYNC penalty at {key}"
    assert penalties[(48, "write")] < penalties[(8, "write")]
    assert penalties[(48, "read")] < penalties[(8, "read")]
