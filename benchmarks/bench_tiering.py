"""E-tier — multi-tier buffering extension (§2.1's Hermes, §1's storage
hierarchies): a checkpoint burst that exceeds PMEM capacity, absorbed under
three placement policies."""

from conftest import emit

from repro.cluster import Cluster
from repro.harness.figures import render_table, write_csv
from repro.mpi import Communicator
from repro.tiers import TierManager, get_policy
from repro.units import KiB, MiB

#: burst: 24 ranks x 8 blobs x 256 KiB functional (scale 500 -> ~24 GB
#: modeled) against 16 MiB of functional PMEM (~8 GB modeled)
NBLOBS = 8
BLOB = 256 * KiB


def job(ctx, mgr, counters):
    comm = Communicator.world(ctx)
    with ctx.phase("burst"):
        for i in range(NBLOBS):
            mgr.put(ctx, f"r{comm.rank}-b{i}", bytes(BLOB))
    comm.barrier()
    if comm.rank == 0:
        # demotions caused by *placement pressure*, not by the drain below
        counters["evictions"] = sum(t.stats.demotions for t in mgr.tiers)
        counters["residency"] = " / ".join(
            f"{t.name}:{t.used // KiB}KiB" for t in mgr.tiers
        )
    comm.barrier()
    with ctx.phase("drain"):
        if comm.rank == 0:
            mgr.drain(ctx)
    comm.barrier()


def run_policies():
    rows = []
    for policy in ("performance", "capacity", "bandwidth"):
        cl = Cluster(scale=500, pmem_capacity=256 * MiB)
        mgr = TierManager.standard(
            get_policy(policy),
            pmem_capacity=16 * MiB,
            nvme_capacity=64 * MiB,
        )
        counters = {}
        res = cl.run(24, lambda ctx: job(ctx, mgr, counters))
        phases = {k: v / 1e9 for k, v in res.time().phase_totals().items()}
        rows.append((
            policy,
            f"{phases.get('burst', 0):.2f}s",
            f"{phases.get('drain', 0):.2f}s",
            counters["evictions"],
            counters["residency"],
        ))
    return rows


def test_tiering_policies(once):
    rows = once(run_policies)
    text = render_table(
        "E-tier: absorbing a ~24 GB burst into an ~8 GB PMEM tier "
        "(24 procs, modeled)",
        ["policy", "burst absorb", "drain to PFS", "evictions",
         "residency after burst"],
        rows,
    )
    emit("tiering", text)
    write_csv("results/tiering.csv",
              ["policy", "burst_s", "drain_s", "demotions", "residency"], rows)
    t = {r[0]: (float(r[1][:-1]), int(r[3])) for r in rows}
    # capacity-aware placement avoids demotion traffic entirely
    assert t["capacity"][1] == 0
    assert t["performance"][1] > 0
    # every policy actually absorbed the burst
    for policy, (burst, _d) in t.items():
        assert burst > 0