"""E-fill — the NC_NOFILL footnote (§4.1): the paper had to call
``nc_def_var_fill(NC_NOFILL)`` "to prevent [NetCDF-4] initializing
variables with a default value, which causes significant overhead for
write workloads."  This ablation measures that overhead."""

from conftest import emit

from repro.harness import render_table, run_io_experiment
from repro.harness.figures import write_csv
from repro.workloads import Domain3D


def run_ablation():
    w = Domain3D(nvars=4)  # 4 vars keep the doubled write volume tractable
    rows = []
    for p in (8, 24):
        t = {}
        for mode in ("nofill", "fill"):
            res = run_io_experiment(
                "NetCDF", p, w,
                directions=("write",),
                driver_override=("netcdf4", {"fill_mode": mode}),
            )
            t[mode] = res[0].seconds
        rows.append((
            p, f"{t['nofill']:.2f}s", f"{t['fill']:.2f}s",
            f"{(t['fill'] / t['nofill'] - 1) * 100:.0f}%",
        ))
    return rows


def test_fill_ablation(once):
    rows = once(run_ablation)
    text = render_table(
        "E-fill: NetCDF-4 default fill vs NC_NOFILL (write-only)",
        ["nprocs", "NC_NOFILL", "NC_FILL (default)", "overhead"],
        rows,
    )
    emit("fill_ablation", text)
    write_csv("results/fill_ablation.csv",
              ["nprocs", "nofill_s", "fill_s", "overhead_pct"], rows)
    for r in rows:
        assert float(r[3].rstrip("%")) > 25, "fill overhead should be large"
