"""E-compress — filter/operator extension (§2.1's HDF5 filters / ADIOS
operators, refs [10,11]): when does compressing a checkpoint into PMEM
beat writing it raw?

Compression trades pMEMCPY's streaming direct-to-PMEM pack for a DRAM
staging pass + encoder CPU, in exchange for fewer PMEM bytes — so the
answer depends on compressibility and how contended the device is.
"""

from conftest import emit

import numpy as np

from repro.cluster import Cluster
from repro.harness.figures import render_table, write_csv
from repro.mpi import Communicator
from repro.pmemcpy import PMEM
from repro.units import MiB

CASES = {
    "sparse (zeros)": lambda n, rank: np.zeros(n),
    "smooth field": lambda n, rank: np.linspace(rank, rank + 1, n),
    "random": lambda n, rank: np.random.default_rng(rank).random(n),
}

PIPELINES = {
    "none": (),
    "rle": ("rle",),
    "shuffle+deflate": ("shuffle:8", "deflate:1"),
}


def job(ctx, filters, gen):
    comm = Communicator.world(ctx)
    pmem = PMEM(filters=filters)
    pmem.mmap("/pmem/cmp", comm)
    n = 16384
    pmem.alloc("v", (n * comm.size,))
    pmem.store("v", gen(n, comm.rank), offsets=(n * comm.rank,))
    comm.barrier()
    pmem.load("v", offsets=(n * comm.rank * 0,), dims=(n,))
    pmem.munmap()


def run_matrix():
    rows = []
    for case, gen in CASES.items():
        for pname, filters in PIPELINES.items():
            cl = Cluster(scale=2000, pmem_capacity=64 * MiB)
            res = cl.run(24, lambda ctx: job(ctx, filters, gen))
            rows.append((case, pname, f"{res.makespan_s:.2f}s"))
    return rows


def test_compression_tradeoff(once):
    rows = once(run_matrix)
    text = render_table(
        "E-compress: filtered vs raw pMEMCPY stores (24 procs, "
        "~63 GB modeled)",
        ["data", "pipeline", "modeled store+load"],
        rows,
    )
    emit("compression", text)
    write_csv("results/compression.csv", ["data", "pipeline", "seconds"], rows)
    t = {(r[0], r[1]): float(r[2][:-1]) for r in rows}
    # highly compressible data: cheap RLE wins despite the staging pass
    # (the win is bounded by encoder CPU + the DRAM copy it buys back)
    assert t[("sparse (zeros)", "rle")] < 0.8 * t[("sparse (zeros)", "none")]
    # incompressible data: compression only costs
    assert t[("random", "shuffle+deflate")] > t[("random", "none")]
