"""E9 — collective vs independent MPI-IO (§2.1 background): why the
contiguous-layout libraries use two-phase collective buffering.

Run at scale=1 (model == functional) so per-run costs are exact: a
column-decomposed 2-D dataset gives every rank one strided run per row.
Independent transfers pay a kernel crossing per run; collective transfers
pay the exchange once and write large merged stripes.
"""

from conftest import emit

import numpy as np

from repro.baselines import Dataspace, H5File
from repro.cluster import Cluster
from repro.harness.figures import render_table, write_csv
from repro.mpi import Communicator
from repro.units import MiB

ROWS_, COLS = 1024, 768


def job(ctx, collective):
    comm = Communicator.world(ctx)
    f = H5File.create(ctx, comm, f"/pmem/cio{int(collective)}")
    ds = f.create_dataset("v", np.float64, Dataspace((ROWS_, COLS)))
    width = COLS // comm.size
    offs = (0, comm.rank * width)
    dims = (ROWS_, width)
    fs = Dataspace((ROWS_, COLS)).select_hyperslab(offs, dims)
    ds.write(ctx, np.ones(dims), fs, collective=collective)
    f.close()


def run_compare():
    rows = []
    for p in (8, 24):
        for collective in (True, False):
            cl = Cluster(scale=1, pmem_capacity=64 * MiB)
            res = cl.run(p, lambda ctx: job(ctx, collective))
            rows.append((
                p, "collective" if collective else "independent",
                f"{res.makespan_s * 1e3:.2f}ms",
            ))
    return rows


def test_collective_vs_independent(once):
    rows = once(run_compare)
    text = render_table(
        "E9: two-phase collective vs independent strided writes "
        f"({ROWS_}x{COLS} doubles, column-decomposed; {ROWS_} runs/rank)",
        ["nprocs", "transfer mode", "time"],
        rows,
    )
    emit("collective_io", text)
    write_csv("results/collective_io.csv",
              ["nprocs", "mode", "ms"], rows)
    t = {(r[0], r[1]): float(r[2][:-2]) for r in rows}
    # per-run kernel crossings make independent strided writes lose
    assert t[(24, "collective")] < t[(24, "independent")]
    assert t[(8, "collective")] < t[(8, "independent")]
