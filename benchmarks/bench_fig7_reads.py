"""E2 — Figure 7: symmetric read-back of the 40 GB 3-D domain vs. process
count.

Paper claims reproduced: pMEMCPY ≈5× faster than NetCDF/pNetCDF and ≈2×
faster than ADIOS with MAP_SYNC off; with it on, no better than ADIOS;
PMCPY-B and NetCDF keep changing past 24 procs.
"""

from conftest import emit

from repro.harness import run_sweep
from repro.harness.experiment import series_from
from repro.harness.figures import ascii_chart, render_table, series_to_rows, write_csv
from repro.workloads import Domain3D


def run_fig7():
    workload = Domain3D()
    results = run_sweep(workload=workload, directions=("write", "read"))
    return series_from(results, "read"), workload


def test_fig7_reads(once):
    series, workload = once(run_fig7)
    rows = series_to_rows(series)
    text = ascii_chart(
        f"Fig. 7: reading a {workload.model_total_bytes / 1e9:.0f} GB 3-D "
        f"domain from PMEM (modeled seconds)",
        series,
    )
    text += "\n\n" + render_table(
        "Fig. 7 data", ["library", "nprocs", "seconds"], rows
    )
    emit("fig7_reads", text)
    write_csv("results/fig7_reads.csv", ["library", "nprocs", "seconds"], rows)

    a, b = series["PMCPY-A"], series["PMCPY-B"]
    adios, netcdf = series["ADIOS"], series["NetCDF"]
    for p in (16, 24, 32, 48):
        assert a[p] < adios[p] < netcdf[p]
    # ~2x vs ADIOS at 24
    assert 1.5 <= adios[24] / a[24] <= 2.6
    # ~5x vs NetCDF at 24 (band)
    assert 4.0 <= netcdf[24] / a[24] <= 8.0
    # PMCPY-B no better than ADIOS (within 15%)
    assert b[24] >= 0.8 * adios[24]
    # PMCPY-B keeps improving past 24
    assert b[48] < b[24]
