"""E8 — burst-buffer drain (§3's DataWarp flush, as an extension): the
drain window from node-local PMEM to the parallel filesystem, and the
implied minimum checkpoint period."""

from conftest import emit

from repro.burst import BurstBuffer, drain_job
from repro.cluster import Cluster
from repro.harness import render_table, run_io_experiment
from repro.harness.figures import write_csv
from repro.workloads import Domain3D


def run_drain():
    w = Domain3D()
    write = run_io_experiment("PMCPY-A", 24, w, directions=("write",))[0]
    bb = BurstBuffer()
    rows = []
    for movers in (2, 4, 8, 16):
        rep = bb.analyze(w.model_total_bytes, write.seconds, movers)
        rows.append((
            movers, f"{rep.write_seconds:.2f}s", f"{rep.drain_seconds:.2f}s",
            f"{rep.min_checkpoint_period_s:.2f}s",
        ))
    # one simulated end-to-end drain as a cross-check of the analytic model
    cl = Cluster(scale=w.scale)
    sim = cl.run(24, lambda ctx: drain_job(ctx, w.functional_total_bytes, movers=8))
    return rows, sim.makespan_s, bb.drain_seconds(w.model_total_bytes, 8)


def test_burst_drain(once):
    rows, sim_s, analytic_s = once(run_drain)
    text = render_table(
        "E8: burst-buffer drain of the 41 GB checkpoint (24-rank write)",
        ["movers", "PMEM write", "drain to PFS", "min ckpt period"],
        rows,
    )
    text += f"\nsimulated 8-mover drain: {sim_s:.2f}s (analytic {analytic_s:.2f}s)"
    emit("burst_drain", text)
    write_csv("results/burst_drain.csv",
              ["movers", "write_s", "drain_s", "min_period_s"], rows)
    # PMEM absorbs the burst much faster than the PFS drains it
    drain8 = float(rows[2][2][:-1])
    write = float(rows[2][1][:-1])
    assert drain8 > 1.5 * write
    # simulation and analytic model agree within 30%
    assert abs(sim_s - analytic_s) / analytic_s < 0.3
