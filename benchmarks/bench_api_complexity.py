"""E3 — §3 API complexity: lines/tokens of equivalent parallel-write
programs (the paper's Figs. 3-5 comparison: pMEMCPY 16 lines / 132 tokens,
HDF5 42/253, ADIOS 24/164)."""

import os

from conftest import emit

from repro.harness import count_source_metrics, render_table
from repro.harness.figures import write_csv

BASE = os.path.join(os.path.dirname(__file__), "..", "examples", "api_complexity")

PAPER = {
    "pmemcpy": (16, 132),
    "adios": (24, 164),
    "hdf5": (42, 253),
}


def collect():
    rows = []
    for lib in ("pmemcpy", "adios", "hdf5", "pnetcdf"):
        with open(os.path.join(BASE, f"write_{lib}.py")) as f:
            m = count_source_metrics(f.read())
        pl, pt = PAPER.get(lib, ("-", "-"))
        rows.append((lib, m["lines"], m["tokens"], pl, pt))
    return rows


def test_api_complexity(once):
    rows = once(collect)
    text = render_table(
        "E3: API complexity — equivalent parallel 1-D array write",
        ["library", "lines (ours)", "tokens (ours)",
         "lines (paper)", "tokens (paper)"],
        rows,
    )
    emit("api_complexity", text)
    write_csv(
        "results/api_complexity.csv",
        ["library", "lines_ours", "tokens_ours", "lines_paper", "tokens_paper"],
        rows,
    )
    by = {r[0]: r for r in rows}
    # the ordering the paper reports: pmemcpy < adios < hdf5 in both metrics
    assert by["pmemcpy"][1] < by["adios"][1] < by["hdf5"][1]   # lines
    assert by["pmemcpy"][2] < by["adios"][2] < by["hdf5"][2]   # tokens
    # the programs really run (they are executed by the examples suite)
