"""Service RPC costs and the saturation curve (DESIGN.md §13).

Two artifacts off the same plumbing the regression gate tracks:

- the modeled cost of the two gated RPC scenarios (``service.rpc_store``,
  ``service.rpc_load_partial``) with their per-endpoint latency
  percentiles — the numbers ``results/perf_baseline.json`` pins;
- a quick virtual-time saturation sweep (10^2..10^5 simulated clients)
  showing throughput flattening while admission control sheds load, with
  zero protocol errors at every point.  The committed full-scale curve
  (10^6 clients) lives in ``results/service_saturation.*`` via
  ``python -m repro.service bench``.
"""

from conftest import emit

from repro.harness.figures import render_table, write_csv
from repro.perf.scenarios import get as get_scenario
from repro.service.loadgen import (LoadgenConfig, render_table as
                                   render_saturation, saturation_sweep)

SWEEP = (100, 1_000, 10_000, 100_000)
QUICK = LoadgenConfig(duration_ms=50.0, keys=64, max_representatives=64,
                      real_batch_budget=40)


def run_rpc_scenarios():
    """[(scenario, modeled seconds, {endpoint: p99 us})] for the two
    perf-gated RPC scripts."""
    rows = []
    for name in ("service.rpc_store", "service.rpc_load_partial"):
        rec = get_scenario(name).run()
        for endpoint, pct in sorted(rec["latency"].items()):
            endpoint = endpoint.removeprefix("service.rpc.")
            rows.append((name, round(rec["modeled_ns"] / 1e9, 6), endpoint,
                         round(pct["p50"] / 1e3, 2),
                         round(pct["p99"] / 1e3, 2)))
    return rows


def run_saturation():
    return saturation_sweep(SWEEP, base=QUICK)


def test_service(once):
    rpc_rows, reports = once(lambda: (run_rpc_scenarios(), run_saturation()))
    text = render_table(
        "Gated RPC scenarios: modeled cost and per-endpoint latency",
        ["scenario", "modeled_s", "endpoint", "p50_us", "p99_us"],
        rpc_rows,
    )
    text += "\n\n" + render_saturation(reports)
    emit("service_bench", text)
    write_csv("results/service_bench.csv",
              ["clients", "throughput_rps", "reject_rate"],
              [(r.clients, round(r.throughput_rps, 1),
                round(r.reject_rate, 4)) for r in reports])

    # the pipeline stays clean at every fleet size
    assert all(r.protocol_errors == 0 for r in reports)
    assert all(r.completed > 0 for r in reports)
    # saturation: the big fleet is shedding load, the small one is not
    assert reports[0].reject_rate == 0.0
    assert reports[-1].reject_rate > 0.5
    # both gated scenarios produced latency histograms for their endpoint
    endpoints = {r[2] for r in rpc_rows}
    assert "store" in endpoints and "load" in endpoints
