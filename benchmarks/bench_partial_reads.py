"""Partial reads — the selection path across every library (DESIGN.md §12).

A ~1% strided scientific query (a dense sub-cube, a single plane, a point
cloud) against the trimmed 40^3 domain: pMEMCPY restricts the load to the
intersecting stored chunks — and, raw-serialized, to the selected row
segments inside each chunk — while the file libraries either use their
native sub-block machinery (HDF5/NetCDF dataspaces, pNetCDF ``get_vars``)
or stage the bounding box (POSIX blocks, ADIOS process groups).

Also renders the storage-efficiency table behind the 5% acceptance gate:
stored bytes touched by the 1% read per pMEMCPY configuration.
"""

import numpy as np
from conftest import emit

from repro.cluster import Cluster
from repro.harness.figures import ascii_chart, render_table, write_csv
from repro.mpi import Communicator
from repro.perf.scenarios import get as get_scenario
from repro.pmemcpy import PMEM, Hyperslab
from repro.units import MiB
from repro.workloads import Domain3D

LIBRARIES = ("ADIOS", "NetCDF", "pNetCDF", "PMCPY-A", "PMCPY-B")
KINDS = ("1pct", "plane", "points")


def run_partial_sweep():
    """{library: {kind: modeled seconds}} via the perf-observatory
    scenarios (same plumbing the regression gate tracks)."""
    series = {}
    for lib in LIBRARIES:
        series[lib] = {}
        for kind in KINDS:
            rec = get_scenario(f"partial.{kind}.{lib}").run()
            series[lib][kind] = rec["modeled_ns"] / 1e9
    return series


def run_read_bytes():
    """Stored bytes touched by the 1% read, per pMEMCPY configuration."""
    w = Domain3D(nvars=1, axis_scale=20)
    data = w.generate(0, (0, 0, 0), w.functional_dims)
    sel = Hyperslab((18, 18, 18), (9, 9, 9))
    configs = [
        ("raw, chunked 10^3", "raw", (10, 10, 10)),
        ("bp4, chunked 10^3", "bp4", (10, 10, 10)),
        ("bp4, unchunked", "bp4", None),
    ]
    rows = []
    for label, serializer, chunk_shape in configs:
        def job(ctx, serializer=serializer, chunk_shape=chunk_shape):
            pmem = PMEM(serializer=serializer)
            pmem.mmap("/pmem/bench_partial", Communicator.world(ctx))
            pmem.alloc("rect00", w.functional_dims, data.dtype,
                       chunk_shape=chunk_shape)
            pmem.store("rect00", data, (0, 0, 0))
            got = pmem.load("rect00", selection=sel)
            assert np.array_equal(got, data[18:27, 18:27, 18:27])
            tel = pmem.stats()["telemetry"]
            pmem.munmap()
            return tel

        cl = Cluster(pmem_capacity=128 * MiB)
        tel = cl.run(1, job).returns[0]
        stored = tel["pmemcpy_stored_write_bytes"]
        read = tel["pmemcpy_stored_read_bytes"]
        rows.append((label, int(read), int(stored),
                     round(100.0 * read / stored, 2)))
    return rows


def test_partial_reads(once):
    series, rows = once(lambda: (run_partial_sweep(), run_read_bytes()))
    text = ascii_chart(
        "Partial reads: ~1% selections of the 40^3 domain, 8 ranks "
        "(modeled seconds)",
        series,
    )
    text += "\n\n" + render_table(
        "Stored bytes touched by the 1% read (pMEMCPY configurations)",
        ["config", "stored_read_bytes", "stored_bytes", "percent"],
        rows,
    )
    emit("partial_reads", text)
    chart_rows = [
        (lib, kind, round(v, 4))
        for lib, vals in series.items() for kind, v in sorted(vals.items())
    ]
    write_csv("results/partial_reads.csv",
              ["library", "kind", "seconds"], chart_rows)

    # pMEMCPY's native selection path beats every staged/file library on
    # the dense 1% query
    for lib in ("ADIOS", "NetCDF", "pNetCDF"):
        assert series["PMCPY-A"]["1pct"] < series[lib]["1pct"]
    # the acceptance gate: ranged raw reads touch < 5% of stored bytes;
    # staged bp4 still skips ~7/8 of the chunks; unchunked reads it all
    by_label = {r[0]: r for r in rows}
    assert by_label["raw, chunked 10^3"][3] < 5.0
    assert by_label["bp4, chunked 10^3"][3] < 15.0
    assert by_label["bp4, unchunked"][3] > 95.0
