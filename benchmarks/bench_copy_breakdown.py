"""E7 — copy-path decomposition (§4.1's explanation, made quantitative):
where each library's time goes at 24 procs — serialization CPU, DRAM
staging, network rearrangement, kernel crossings, device transfers."""

from conftest import emit

from repro.harness.experiment import breakdown_experiment
from repro.harness.figures import render_table, write_csv
from repro.workloads import Domain3D

BUCKET_LABELS = {
    "cpu": "serialize/convert (CPU)",
    "dram": "DRAM staging copies",
    "net": "rearrangement (MPI)",
    "pmem_write": "PMEM writes",
    "pmem_read": "PMEM reads",
    "delay": "latencies (syscalls/faults/MAP_SYNC)",
    "barrier": "synchronization wait",
}


def run_breakdown():
    res = breakdown_experiment(nprocs=24, workload=Domain3D())
    rows = []
    for label, dirs in res.items():
        for direction, pb in dirs.items():
            buckets: dict[str, float] = {}
            for (_phase, bucket), ns in pb.detail.items():
                buckets[bucket] = buckets.get(bucket, 0.0) + ns / 1e9
            total = pb.makespan_ns / 1e9
            for bucket, s in sorted(buckets.items(), key=lambda kv: -kv[1]):
                if s < 0.05:
                    continue
                rows.append((
                    label, direction, BUCKET_LABELS.get(bucket, bucket),
                    f"{s:.2f}s", f"{100 * s / total:.0f}%",
                ))
    return rows


def test_copy_breakdown(once):
    rows = once(run_breakdown)
    text = render_table(
        "E7: copy-path decomposition @24 procs (mean rank-seconds per bucket)",
        ["library", "dir", "cost bucket", "seconds", "of makespan"],
        rows,
    )
    emit("copy_breakdown", text)
    write_csv("results/copy_breakdown.csv",
              ["library", "direction", "bucket", "seconds", "pct"], rows)

    def bucket_set(lib, direction):
        return {r[2] for r in rows if r[0] == lib and r[1] == direction}

    # the qualitative §4.1 story, visible in the decomposition:
    assert "rearrangement (MPI)" in bucket_set("NetCDF", "write")
    assert "rearrangement (MPI)" not in bucket_set("ADIOS", "write")
    assert "DRAM staging copies" in bucket_set("ADIOS", "write")
    assert "DRAM staging copies" not in bucket_set("PMCPY-A", "write")
    assert "latencies (syscalls/faults/MAP_SYNC)" in bucket_set("PMCPY-B", "write")
