"""E-tune — auto-tuning extension (§1's auto-tuning literature, applied to
pMEMCPY's own small knob space): how close greedy coordinate descent gets
to the exhaustive-grid optimum, and at what trial cost."""

from conftest import emit

from repro.harness.figures import render_table, write_csv
from repro.tuning import autotune_pmemcpy
from repro.workloads import Domain3D


def run_tune():
    w = Domain3D(nvars=2, model_dims=(400, 400, 400), axis_scale=10)
    grid = autotune_pmemcpy(w, 8, strategy="grid")
    greedy = autotune_pmemcpy(w, 8, strategy="greedy")
    rows = [
        ("grid (exhaustive)", grid.n_trials,
         f"{grid.best_seconds:.3f}s", _fmt(grid.best)),
        ("greedy (coord descent)", greedy.n_trials,
         f"{greedy.best_seconds:.3f}s", _fmt(greedy.best)),
    ]
    return rows, grid, greedy


def _fmt(cfg):
    return ", ".join(
        f"{k}={v}" for k, v in sorted(cfg.items()) if v not in ((), False)
    ) or "defaults"


def test_autotune(once):
    rows, grid, greedy = once(run_tune)
    text = render_table(
        "E-tune: auto-tuning pMEMCPY (8 procs, 2-var domain)",
        ["strategy", "trials", "best time", "winning knobs"],
        rows,
    )
    emit("autotune", text)
    write_csv("results/autotune.csv",
              ["strategy", "trials", "best_s", "config"], rows)
    # greedy must be cheaper and land within 5% of the true optimum
    assert greedy.n_trials < grid.n_trials
    assert greedy.best_seconds <= grid.best_seconds * 1.05
    # the tuned config beats the paper-default config (bp4/hashtable)
    default = [
        s for cfg, s in grid.trials
        if cfg["serializer"] == "bp4" and cfg["layout"] == "hashtable"
        and not cfg["map_sync"] and cfg["filters"] == ()
    ][0]
    assert grid.best_seconds <= default
