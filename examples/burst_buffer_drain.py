"""Burst-buffer drain (§3 / E8): after pMEMCPY lands a checkpoint in
node-local PMEM, DataWarp-style movers asynchronously flush it to the
parallel filesystem.

Prints the checkpoint-vs-drain time table: PMEM absorbs the burst ~an
order of magnitude faster than the PFS can ingest it, which is exactly the
buffering value proposition — and the drain window sets the minimum safe
checkpoint period.

Run:  python examples/burst_buffer_drain.py
"""

from repro import Cluster, Communicator
from repro.burst import BurstBuffer, drain_job
from repro.harness import render_table, run_io_experiment
from repro.workloads import Domain3D


def main():
    nprocs = 24
    workload = Domain3D()
    write = run_io_experiment(
        "PMCPY-A", nprocs, workload, directions=("write",)
    )[0]

    bb = BurstBuffer()
    rows = []
    for movers in (2, 4, 8, 16):
        rep = bb.analyze(workload.model_total_bytes, write.seconds, movers)
        rows.append((
            movers,
            f"{rep.write_seconds:.2f}s",
            f"{rep.drain_seconds:.2f}s",
            f"{rep.min_checkpoint_period_s:.2f}s",
            f"{rep.speedup_vs_direct():.2f}x",
        ))
    print(render_table(
        f"burst-buffer drain of a {workload.model_total_bytes / 1e9:.0f} GB "
        f"checkpoint ({nprocs}-rank write)",
        ["movers", "PMEM write", "drain to PFS", "min ckpt period",
         "app speedup vs direct-to-PFS"],
        rows,
    ))

    # and the same thing measured through the simulator, end to end
    cl = Cluster(scale=workload.scale)
    functional = workload.functional_total_bytes
    res = cl.run(nprocs, lambda ctx: drain_job(ctx, functional, movers=8))
    print(f"\nsimulated 8-mover drain: {res.makespan_s:.2f}s "
          f"(analytic: {bb.drain_seconds(workload.model_total_bytes, 8):.2f}s)")


if __name__ == "__main__":
    main()
