"""Auto-tuning pMEMCPY's configuration for a workload (extension; §1 cites
auto-tuning as the usual remedy for PIO configuration complexity).

Greedy coordinate descent over {serializer × layout × MAP_SYNC × filters}
against the modeled write+read time of a small 3-D domain, then the best
configs vs. the default, side by side.

Run:  python examples/autotune_config.py
"""

from repro.harness import render_table
from repro.tuning import autotune_pmemcpy
from repro.workloads import Domain3D


def main():
    workload = Domain3D(nvars=4, model_dims=(400, 400, 400), axis_scale=10)
    print(f"tuning for: {workload.nvars} vars × {workload.model_dims} "
          f"doubles ≈ {workload.model_total_bytes / 1e9:.1f} GB, 8 procs\n")

    greedy = autotune_pmemcpy(workload, 8, strategy="greedy")
    print(greedy.render())
    print()

    grid = autotune_pmemcpy(workload, 8, strategy="grid")
    rows = [
        ("greedy", greedy.n_trials, f"{greedy.best_seconds:.2f}s",
         str(greedy.best)),
        ("grid (exhaustive)", grid.n_trials, f"{grid.best_seconds:.2f}s",
         str(grid.best)),
    ]
    print(render_table(
        "strategy comparison",
        ["strategy", "trials", "best time", "best config"],
        rows,
    ))
    saved = grid.n_trials - greedy.n_trials
    print(f"\ngreedy reached {'the same' if greedy.best == grid.best else 'a'}"
          f" optimum with {saved} fewer trials")


if __name__ == "__main__":
    main()
