"""The §3 hierarchical data layout: "whenever a '/' is used in the id of
the variable, a directory is created if it didn't already exist."

Stores a small field hierarchy, then walks the resulting DAX-filesystem
directory tree to show variables really are files under nested directories,
and compares store time against the flat hashtable layout.

Run:  python examples/hierarchical_layout.py
"""

import numpy as np

from repro import Cluster, Communicator, PMEM


def write_tree(ctx, layout):
    comm = Communicator.world(ctx)
    pmem = PMEM(layout=layout)
    pmem.mmap(f"/pmem/{layout}", comm)
    if comm.rank == 0:
        pmem.store("config/timestep", 42.0)
        pmem.store("fields/velocity/u", np.ones((8, 8)))
        pmem.store("fields/velocity/v", np.zeros((8, 8)))
        pmem.store("fields/pressure", np.full((8, 8), 2.5))
    comm.barrier()
    names = pmem.list_variables()
    value = pmem.load("fields/pressure")[0, 0]
    pmem.munmap()
    return names, value


def walk(vfs, ctx, path, depth=0):
    lines = []
    for name in vfs.listdir(ctx, path):
        st = vfs.stat(ctx, f"{path}/{name}")
        kind = "dir " if st["is_dir"] else f"file ({st['size']}B)"
        lines.append("  " * depth + f"{name}  [{kind}]")
        if st["is_dir"]:
            lines.extend(walk(vfs, ctx, f"{path}/{name}", depth + 1))
    return lines


def main():
    cl = Cluster()
    for layout in ("hierarchical", "hashtable"):
        res = cl.run(2, lambda ctx: write_tree(ctx, layout))
        names, value = res.returns[0]
        print(f"[{layout}] variables: {names}; pressure[0,0] = {value}")
        print(f"[{layout}] modeled store time: {res.makespan_s * 1e3:.3f} ms")

    # show the on-device directory tree the hierarchical layout created
    def show(ctx):
        return walk(ctx.env.vfs, ctx, "/pmem/hierarchical")

    tree = cl.run(1, show).returns[0]
    print("\n/pmem/hierarchical on the DAX filesystem:")
    for line in tree:
        print("  " + line)


if __name__ == "__main__":
    main()
