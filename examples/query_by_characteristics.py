"""Querying by BP data characteristics (§2.1: BP offers "lightweight data
characterization") — find which blocks of a 3-D field can contain a value,
reading only record *headers*, then fetch just those blocks.

A hotspot lives in one rank's block; the min/max index prunes the rest of
the 40 GB-scale dataset without touching its payload.

Run:  python examples/query_by_characteristics.py
"""

import numpy as np

from repro import Cluster, Communicator
from repro.baselines import AdiosFile
from repro.sim.trace import Transfer
from repro.workloads import block_decompose

GDIMS = (32, 32, 32)
HOT_RANK = 5
THRESHOLD = 900.0


def writer(ctx):
    comm = Communicator.world(ctx)
    offs, dims = block_decompose(GDIMS, comm.size, comm.rank)
    field = np.random.default_rng(comm.rank).random(dims) * 100.0
    if comm.rank == HOT_RANK:
        field[tuple(d // 2 for d in dims)] = 1000.0  # the hotspot
    f = AdiosFile(ctx, comm, "/pmem/field.bp", "w")
    f.write("T", field, offs, GDIMS)
    f.close()


def query(ctx):
    comm = Communicator.world(ctx)
    f = AdiosFile(ctx, comm, "/pmem/field.bp", "r")
    # phase 1: scan the characteristics index only
    blocks = f.inquire("T")
    candidates = [b for b in blocks if b["max"] >= THRESHOLD]
    # phase 2: read only the candidate blocks' payloads
    hits = []
    for b in candidates:
        data = f.read("T", b["offsets"], b["dims"])
        local = np.argwhere(data >= THRESHOLD)
        for idx in local:
            hits.append(tuple(int(o + i) for o, i in zip(b["offsets"], idx)))
    f.close()
    return len(blocks), len(candidates), hits


def main():
    nprocs = 8
    cl = Cluster()
    cl.run(nprocs, writer)

    res = cl.run(1, query)
    nblocks, ncand, hits = res.returns[0]
    payload_read = sum(
        op.amount for op in res.traces[0].ops
        if isinstance(op, Transfer) and op.resource == "pmem_read"
    )
    total_bytes = int(np.prod(GDIMS)) * 8
    print(f"index scan: {nblocks} blocks, {ncand} candidate(s) with "
          f"max >= {THRESHOLD}")
    print(f"hotspot found at global index {hits[0]}")
    print(f"bytes read: {payload_read / 1e3:.1f} KB of a "
          f"{total_bytes / 1e3:.1f} KB dataset "
          f"({100 * payload_read / total_bytes:.0f}%) — the characteristics "
          f"index pruned the rest")
    assert ncand == 1 and len(hits) == 1


if __name__ == "__main__":
    main()
