"""Quickstart: the paper's Fig. 3 usage example in Python.

Each of 4 ranks writes 100 doubles to non-overlapping offsets of a global
1-D array "A" stored directly in (emulated) persistent memory, then reads
the whole array back and verifies it.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Cluster, Communicator, Dimensions, PMEM


def main(ctx):
    comm = Communicator.world(ctx)
    count = 100
    off = count * comm.rank
    dimsf = count * comm.size

    data = np.full(count, float(comm.rank))

    pmem = PMEM()                       # pmemcpy::PMEM pmem;
    pmem.mmap("/pmem/quickstart", comm)  # pmem.mmap(path, MPI_COMM_WORLD);
    pmem.alloc("A", Dimensions(dimsf))   # pmem.alloc<double>("A", 1, &dimsf);
    pmem.store("A", data, offsets=(off,))
    comm.barrier()

    whole = pmem.load("A")
    dims = pmem.load_dims("A")
    pmem.munmap()

    expected = np.repeat(np.arange(float(comm.size)), count)
    assert dims == (dimsf,)
    assert np.array_equal(whole, expected)
    return float(whole.sum())


if __name__ == "__main__":
    cluster = Cluster()
    result = cluster.run(4, main)
    print(f"every rank read back the full array; checksum = {result.returns[0]}")
    print(f"modeled I/O time: {result.makespan_s * 1e3:.3f} ms "
          f"({result.nprocs} ranks)")
