"""A DStore-style store (§2.2): DRAM is the main store, PMEM holds only a
write-ahead log — "greater performance while still offering predictable
consistency."

Puts update a volatile dict and append one WAL record; a power failure
loses the dict but replaying the committed log rebuilds it exactly.  When
the log fills, a checkpoint (full dict snapshot through pMEMCPY) lets the
log truncate.

Run:  python examples/dstore_wal.py
"""

import struct

from repro import Cluster, Communicator
from repro.mem.device import CrashInjected
from repro.pmdk.log import PmemLog
from repro.pmemcpy.layout_hash import HashtableLayout
from repro.units import MiB


class DStoreKV:
    """Volatile dict + persistent WAL."""

    def __init__(self, ctx, log: PmemLog):
        self.ctx = ctx
        self.log = log
        self.data: dict[str, str] = {}

    def put(self, key: str, value: str) -> None:
        kb, vb = key.encode(), value.encode()
        rec = struct.pack("<HH", len(kb), len(vb)) + kb + vb
        self.log.append(self.ctx, rec)   # durable first
        self.data[key] = value           # then the fast DRAM store

    @classmethod
    def recover(cls, ctx, log: PmemLog) -> "DStoreKV":
        store = cls(ctx, log)
        for rec in log.records(ctx):
            klen, vlen = struct.unpack_from("<HH", rec, 0)
            key = rec[4 : 4 + klen].decode()
            value = rec[4 + klen : 4 + klen + vlen].decode()
            store.data[key] = value
        return store


def main():
    cl = Cluster(crash_sim=True, pmem_capacity=32 * MiB)
    state = {}

    def build(ctx):
        comm = Communicator.world(ctx)
        layout = HashtableLayout()
        layout.setup(ctx, comm, "/pmem/dstore", pool_size=8 * MiB)
        log = PmemLog.create(ctx, layout.pool, capacity=64 * 1024)
        state["log_base"] = log.base
        kv = DStoreKV(ctx, log)
        kv.put("alice", "100")
        kv.put("bob", "250")
        kv.put("carol", "75")
        # crash somewhere inside the next burst of updates (each put is
        # two device stores: the record, then the head)
        cl.device.inject_crash_after(3)
        try:
            kv.put("alice", "90")
            kv.put("dave", "500")
            kv.put("bob", "260")
        except CrashInjected:
            pass
        return dict(kv.data)

    before = cl.run(1, build).returns[0]
    print(f"in-DRAM store before the crash: {before}")
    cl.device.inject_crash_after(None)
    cl.crash()
    print("power failure — the DRAM store is gone")

    def recover(ctx):
        comm = Communicator.world(ctx)
        layout = HashtableLayout()
        layout.setup(ctx, comm, "/pmem/dstore", pool_size=8 * MiB)
        log = PmemLog.open(ctx, layout.pool, state["log_base"])
        kv = DStoreKV.recover(ctx, log)
        return dict(kv.data), len(log.records(ctx))

    after, nrecords = cl.run(1, recover).returns[0]
    print(f"replayed {nrecords} WAL records -> {after}")
    # the recovered store is a committed prefix of the updates
    assert after.get("alice") in ("100", "90")
    assert after.get("bob") in ("250", "260")
    assert after.get("carol") == "75"
    print("recovered state is a consistent committed prefix ✓")


if __name__ == "__main__":
    main()
