"""PMDK transactions under power failure — two ways to test the same claim.

Part 1 (legacy): build a persistent hashtable in a pool on a
crash-simulating device, power-fail the node at a randomly chosen device
store *inside* a transaction, re-open the pool (running undo-log
recovery), and show that every key-value pair is either fully present or
fully absent — never torn.

Part 2 (campaign): hand the same bank-transfer workload to the
``repro.crash`` subsystem, which replaces the random crash point with a
*systematic* sweep: it journals every store/flush/drain, enumerates
reachable post-power-failure images (epoch boundaries, reordered cacheline
retirement, torn sub-line writes), recovers each one, and runs structural
and atomic-visibility oracles against it.

Run:  python examples/crash_recovery.py
"""

import random

from repro import Cluster, Communicator
from repro.crash import TxWorkload, run_campaign
from repro.mem.device import CrashInjected
from repro.pmemcpy.layout_hash import HashtableLayout
from repro.units import MiB


def build(ctx, cl, crash_after):
    comm = Communicator.world(ctx)
    layout = HashtableLayout()
    layout.setup(ctx, comm, "/pmem/bank", pool_size=8 * MiB)
    m = layout.map
    # committed balances
    m.put(ctx, b"alice", b"100")
    m.put(ctx, b"bob", b"250")
    cl.device.inject_crash_after(crash_after)
    try:
        # a "transfer" that dies partway through its device stores
        m.put(ctx, b"alice", b"0")
        m.put(ctx, b"bob", b"350")
        m.put(ctx, b"audit", b"alice->bob:100")
    except CrashInjected:
        pass
    cl.device.inject_crash_after(None)


def inspect(ctx, cl):
    comm = Communicator.world(ctx)
    layout = HashtableLayout()
    layout.setup(ctx, comm, "/pmem/bank", pool_size=8 * MiB)
    return layout.map.items(ctx)


def legacy_random_crash_points():
    print("-- part 1: random crash points (inject_crash_after) --")
    rng = random.Random(7)
    outcomes = {}
    for _trial in range(8):
        crash_after = rng.randint(0, 120)
        cl = Cluster(crash_sim=True, pmem_capacity=16 * MiB)
        cl.run(1, lambda ctx: build(ctx, cl, crash_after))
        cl.crash()  # power failure: unflushed cachelines are gone
        items = cl.run(1, lambda ctx: inspect(ctx, cl)).returns[0]
        state = dict(items)
        # invariant: committed prefix only — balances are never torn
        assert state.get(b"alice") in (b"100", b"0"), state
        assert state.get(b"bob") in (b"250", b"350"), state
        outcomes[crash_after] = {
            k.decode(): v.decode() for k, v in sorted(state.items())
        }
        print(f"crash after {crash_after:3d} stores -> recovered state: "
              f"{outcomes[crash_after]}")
    print("every recovery produced a transaction-consistent prefix ✓\n")


def systematic_campaign():
    print("-- part 2: systematic crash-state campaign (repro.crash) --")
    report = run_campaign(TxWorkload(), budget=60, seed=7)
    print(report.render())
    print(report.counters().render("campaign telemetry"))
    assert report.ok, report.render()


def main():
    legacy_random_crash_points()
    systematic_campaign()


if __name__ == "__main__":
    main()
