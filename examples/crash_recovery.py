"""PMDK transactions under power failure.

Builds a persistent hashtable in a pool on a crash-simulating device,
power-fails the node at a randomly chosen device store *inside* a
transaction, re-opens the pool (running undo-log recovery), and shows that
every key-value pair is either fully present or fully absent — never torn.

Run:  python examples/crash_recovery.py
"""

import random

from repro import Cluster, Communicator
from repro.mem.device import CrashInjected
from repro.pmdk import PmemHashmap, PmemPool
from repro.pmemcpy.layout_hash import HashtableLayout
from repro.units import MiB


def build(ctx, cl, crash_after):
    comm = Communicator.world(ctx)
    layout = HashtableLayout()
    layout.setup(ctx, comm, "/pmem/bank", pool_size=8 * MiB)
    m = layout.map
    # committed balances
    m.put(ctx, b"alice", b"100")
    m.put(ctx, b"bob", b"250")
    cl.device.inject_crash_after(crash_after)
    try:
        # a "transfer" that dies partway through its device stores
        m.put(ctx, b"alice", b"0")
        m.put(ctx, b"bob", b"350")
        m.put(ctx, b"audit", b"alice->bob:100")
    except CrashInjected:
        pass
    cl.device.inject_crash_after(None)


def inspect(ctx, cl):
    comm = Communicator.world(ctx)
    layout = HashtableLayout()
    layout.setup(ctx, comm, "/pmem/bank", pool_size=8 * MiB)
    return layout.map.items(ctx)


def main():
    rng = random.Random(7)
    outcomes = {}
    for trial in range(8):
        crash_after = rng.randint(0, 120)
        cl = Cluster(crash_sim=True, pmem_capacity=16 * MiB)
        cl.run(1, lambda ctx: build(ctx, cl, crash_after))
        cl.crash()  # power failure: unflushed cachelines are gone
        items = cl.run(1, lambda ctx: inspect(ctx, cl)).returns[0]
        state = dict(items)
        # invariant: committed prefix only — balances are never torn
        assert state.get(b"alice") in (b"100", b"0"), state
        assert state.get(b"bob") in (b"250", b"350"), state
        outcomes[crash_after] = {
            k.decode(): v.decode() for k, v in sorted(state.items())
        }
        print(f"crash after {crash_after:3d} stores -> recovered state: "
              f"{outcomes[crash_after]}")
    print("\nevery recovery produced a transaction-consistent prefix ✓")


if __name__ == "__main__":
    main()
