"""A real mini-app: 3-D Jacobi heat diffusion with halo exchange over the
simulated MPI, checkpointing its state through pMEMCPY — then a mid-run
*power failure*, and a restart from the last durable checkpoint.

Demonstrates: decomposition + point-to-point halo exchange, periodic
pMEMCPY checkpoints, crash-simulation, and restart correctness (the
restarted run converges to exactly the same field as an uninterrupted one).
The reference run's I/O span tree is exported as
``results/heat3d.trace.json`` — load it in https://ui.perfetto.dev (or
``chrome://tracing``) to see a checkpoint's store pipeline, one track
per rank.  The export defaults to ``REPRO_TRACE=sampled`` (1-in-64 root
spans, full subtrees) so the committed artifact stays small; set
``REPRO_TRACE=full`` for every span.

Run:  python examples/heat3d_stencil.py
"""

import os

import numpy as np

from repro import Cluster, Communicator, PMEM
from repro.workloads import block_decompose

N = (24, 24, 24)          # global grid
STEPS = 12                # total timesteps
CHECKPOINT_EVERY = 4
ALPHA = 0.1


def exchange_halos(comm, u, axis_ranks):
    """1-D decomposition along axis 0: swap boundary planes with
    neighbors."""
    rank, size = comm.rank, comm.size
    if rank > 0:
        comm.send(u[1].copy(), dest=rank - 1, tag=0)
        u[0] = comm.recv(source=rank - 1, tag=1)
    if rank < size - 1:
        comm.send(u[-2].copy(), dest=rank + 1, tag=1)
        u[-1] = comm.recv(source=rank + 1, tag=0)


def jacobi_step(u):
    """One explicit diffusion step on the interior."""
    out = u.copy()
    out[1:-1, 1:-1, 1:-1] = u[1:-1, 1:-1, 1:-1] + ALPHA * (
        u[2:, 1:-1, 1:-1] + u[:-2, 1:-1, 1:-1]
        + u[1:-1, 2:, 1:-1] + u[1:-1, :-2, 1:-1]
        + u[1:-1, 1:-1, 2:] + u[1:-1, 1:-1, :-2]
        - 6.0 * u[1:-1, 1:-1, 1:-1]
    )
    return out


def initial_field(offsets, dims):
    i = np.arange(offsets[0], offsets[0] + dims[0]).reshape(-1, 1, 1)
    j = np.arange(dims[1]).reshape(1, -1, 1)
    k = np.arange(dims[2]).reshape(1, 1, -1)
    return np.exp(
        -((i - N[0] / 2) ** 2 + (j - N[1] / 2) ** 2 + (k - N[2] / 2) ** 2)
        / 30.0
    )


def run_app(ctx, *, crash_after: int | None, start_fresh: bool):
    """The solver: optionally restarts from the latest checkpoint."""
    comm = Communicator.world(ctx)
    offsets, dims = block_decompose(N, comm.size, comm.rank)
    # pad axis 0 with halo planes
    u = np.zeros((dims[0] + 2, dims[1], dims[2]))

    pmem = PMEM(layout="hierarchical")
    pmem.mmap("/pmem/heat3d", comm)

    step0 = 0
    if not start_fresh and "ckpt/step" in pmem.list_variables():
        step0 = int(pmem.load("ckpt/step"))
        u[1:-1] = pmem.load("ckpt/u", offsets=offsets, dims=dims)
        if comm.rank == 0:
            print(f"  restarted from checkpoint at step {step0}")
    else:
        u[1:-1] = initial_field(offsets, dims)

    for step in range(step0, STEPS):
        exchange_halos(comm, u, None)
        u = jacobi_step(u)
        if (step + 1) % CHECKPOINT_EVERY == 0:
            # rank-staggered checkpoint I/O: with every rank storing at
            # once, the metadata-lock queue forms in functional thread
            # arrival order, which is racy — and the exported trace
            # artifact churns across identical runs.  Serializing by rank
            # makes the lock order (and the committed trace) byte-stable;
            # the concurrent-store path stays covered by the test suite
            # and benchmarks.
            if comm.rank == 0:
                pmem.alloc("ckpt/u", N)
            comm.barrier()
            for r in range(comm.size):
                if comm.rank == r:
                    pmem.store("ckpt/u", u[1:-1], offsets=offsets)
                comm.barrier()
            if comm.rank == 0:
                pmem.store("ckpt/step", float(step + 1))
            comm.barrier()
        if crash_after is not None and step + 1 == crash_after:
            pmem.munmap()
            return None, step + 1
    interior = u[1:-1]
    total = comm.allreduce(np.array([interior.sum()]))[0]
    pmem.munmap()
    return total, STEPS


#: the committed trace must stay repo-friendly; sampled mode (1-in-64
#: roots, full subtrees) keeps the shape visible well under this
TRACE_SIZE_BUDGET = 100 * 1024


def main():
    nprocs = 4
    # sample the span tree unless the caller asked for something else —
    # a full trace of this app is ~25x larger with no extra insight
    os.environ.setdefault("REPRO_TRACE", "sampled")

    # Reference: uninterrupted run.
    ref_cluster = Cluster(crash_sim=True)
    ref = ref_cluster.run(
        nprocs, lambda ctx: run_app(ctx, crash_after=None, start_fresh=True)
    )
    ref_total = ref.returns[0][0]
    print(f"uninterrupted run: sum(u) = {ref_total:.6f} after {STEPS} steps")

    # export the reference run's span tree for Perfetto / chrome://tracing
    from repro.telemetry.export import chrome_trace, write_json

    os.makedirs("results", exist_ok=True)
    path = write_json("results/heat3d.trace.json",
                      chrome_trace(ref.traces, process_name="heat3d"))
    size = os.path.getsize(path)
    if size >= TRACE_SIZE_BUDGET:
        raise SystemExit(
            f"{path} is {size} bytes (budget {TRACE_SIZE_BUDGET}); "
            f"run with REPRO_TRACE=sampled before committing it"
        )
    print(f"I/O trace written to {path} ({size} bytes) — "
          f"open it at https://ui.perfetto.dev")

    # Crashy run: power fails at step 6 (after the step-4 checkpoint).
    cl = Cluster(crash_sim=True)
    cl.run(nprocs, lambda ctx: run_app(ctx, crash_after=6, start_fresh=True))
    print("power failure at step 6 — un-persisted state lost")
    cl.crash()  # drop volatile device state + node caches

    out = cl.run(
        nprocs, lambda ctx: run_app(ctx, crash_after=None, start_fresh=False)
    )
    total = out.returns[0][0]
    print(f"restarted run:     sum(u) = {total:.6f} after {STEPS} steps")
    assert abs(total - ref_total) < 1e-9, "restart diverged!"
    print("restart matches the uninterrupted run exactly ✓")


if __name__ == "__main__":
    main()
