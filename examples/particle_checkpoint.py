"""Particle (compound-type) I/O: the §2.1 complaint made concrete.

The paper notes HDF5 "compound types do not support the nesting of compound
types or dynamically sized arrays" and that a memcpy-style interface is
preferable.  Here each rank owns a *different number* of particles with a
structured dtype — pMEMCPY stores each rank's slab as its own chunk with a
one-line call, using exscan to agree on offsets.

Run:  python examples/particle_checkpoint.py
"""

import numpy as np

from repro import Cluster, Communicator, PMEM

PARTICLE = np.dtype([
    ("pos", "<f8", (3,)),
    ("vel", "<f8", (3,)),
    ("charge", "<f4"),
    ("species", "<i4"),
])


def make_particles(rank: int, count: int) -> np.ndarray:
    rng = np.random.default_rng(rank)
    p = np.zeros(count, dtype=PARTICLE)
    p["pos"] = rng.random((count, 3))
    p["vel"] = rng.standard_normal((count, 3))
    p["charge"] = np.where(rng.random(count) < 0.5, -1.0, 1.0)
    p["species"] = rank
    return p


def main(ctx):
    comm = Communicator.world(ctx)
    # dynamically sized per rank: rank r owns 1000 + 137*r particles
    mine = 1000 + 137 * comm.rank
    particles = make_particles(comm.rank, mine)

    # agree on the global layout with a prefix sum
    my_off = int(comm.exscan(np.array([mine]))[0])
    total = int(comm.allreduce(np.array([mine]))[0])

    pmem = PMEM(serializer="cproto")
    pmem.mmap("/pmem/particles", comm)
    pmem.alloc("plasma", (total,), PARTICLE)
    pmem.store("plasma", particles, offsets=(my_off,))
    comm.barrier()

    # any rank can read any slice — e.g. rank 0 audits the species counts
    if comm.rank == 0:
        everything = pmem.load("plasma")
        counts = {
            s: int((everything["species"] == s).sum())
            for s in range(comm.size)
        }
        net_charge = float(everything["charge"].sum())
    else:
        counts, net_charge = None, None
    pmem.munmap()
    return counts, net_charge, total


if __name__ == "__main__":
    result = Cluster().run(4, main)
    counts, net_charge, total = result.returns[0]
    expected = {r: 1000 + 137 * r for r in range(4)}
    assert counts == expected, counts
    print(f"checkpointed {total} particles "
          f"({', '.join(f'rank{r}:{n}' for r, n in counts.items())})")
    print(f"net charge read back: {net_charge:+.1f}")
    print(f"modeled I/O time: {result.makespan_s * 1e3:.3f} ms")
