"""E3 (extra datum): the equivalent pNetCDF program — the define/data-mode
split and dimension objects the paper calls "unnecessary complexity"."""
import numpy as np

from repro import Cluster, Communicator
from repro.baselines import PnetcdfFile


def main(ctx):
    comm = Communicator.world(ctx)
    count = 100
    offset = 100 * comm.rank
    dimsf = 100 * comm.size
    data = np.zeros(count)
    f = PnetcdfFile(ctx, comm, "/pmem/data.nc", "w")
    dim = f.def_dim("x", dimsf)
    f.def_var("A", np.float64, (dim,))
    f.enddef(ctx)
    f.put_vara_all(ctx, "A", (offset,), (count,), data)
    f.close(ctx)


if __name__ == "__main__":
    Cluster().run(4, main)
