"""E3: the paper's Fig. 5 — the equivalent ADIOS program.  As in the
paper, the array's dimensions travel as separately written variables."""
import numpy as np

from repro import Cluster, Communicator
from repro.baselines import AdiosFile


def main(ctx):
    comm = Communicator.world(ctx)
    count = 100
    offset = 100 * comm.rank
    dimsf = 100 * comm.size
    data = np.zeros(count)
    handle = AdiosFile(ctx, comm, "/pmem/data.bp", "w")
    handle.write("count", np.array([count]))
    handle.write("dimsf", np.array([dimsf]))
    handle.write("offset", np.array([offset]))
    handle.write("A", data, (offset,), (dimsf,))
    handle.close()


if __name__ == "__main__":
    Cluster().run(4, main)
