"""E3: the paper's Fig. 3 — parallel 1-D array write with pMEMCPY."""
import numpy as np

from repro import Cluster, Communicator, PMEM


def main(ctx):
    comm = Communicator.world(ctx)
    count = 100
    off = 100 * comm.rank
    dimsf = 100 * comm.size
    data = np.zeros(count)
    pmem = PMEM()
    pmem.mmap("/pmem/data", comm)
    pmem.alloc("A", (dimsf,))
    pmem.store("A", data, offsets=(off,))
    pmem.munmap()


if __name__ == "__main__":
    Cluster().run(4, main)
