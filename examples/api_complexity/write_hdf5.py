"""E3: the paper's Fig. 4 — the equivalent HDF5 program."""
import numpy as np

from repro import Cluster, Communicator
from repro.baselines import H5File, H5Pcreate, H5Screate_simple


def main(ctx):
    comm = Communicator.world(ctx)
    count = 100
    offset = 100 * comm.rank
    dimsf = 100 * comm.size
    data = np.zeros(count, dtype=np.int32)
    plist = H5Pcreate("file_access")
    plist.set_fapl_mpio(comm, None)
    file = H5File.create(ctx, comm, "/pmem/data.h5", fapl=plist)
    plist.close()
    filespace = H5Screate_simple((dimsf,))
    dset = file.create_dataset("dataset", np.int32, filespace)
    memspace = H5Screate_simple((count,))
    filespace = dset.get_space()
    filespace.select_hyperslab((offset,), (count,))
    plist = H5Pcreate("dataset_xfer")
    dset.write(ctx, data, filespace, memspace, plist)
    dset.close()
    plist.close()
    file.close()


if __name__ == "__main__":
    Cluster().run(4, main)
