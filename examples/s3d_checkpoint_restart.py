"""S3D-style checkpoint/restart: the paper's §4.1 workload end to end.

Writes the 10-variable 3-D domain (40 GB at model scale) with each library,
reads it back symmetrically with verification, and prints a miniature
Fig. 6/7 — who wins and by how much at 24 processes.

Run:  python examples/s3d_checkpoint_restart.py [nprocs]
"""

import sys

from repro.harness import PAPER_LIBRARIES, render_table, run_io_experiment
from repro.workloads import Domain3D


def main(nprocs: int = 24) -> None:
    workload = Domain3D()  # 10 × 800³ doubles ≈ 41 GB at model scale
    print(
        f"workload: {workload.nvars} vars × {workload.model_dims} doubles "
        f"= {workload.model_total_bytes / 1e9:.1f} GB (functional pass runs "
        f"at 1/{workload.scale})"
    )
    results = {
        label: run_io_experiment(label, nprocs, workload)
        for label in PAPER_LIBRARIES
    }
    base = {r.direction: r.seconds for r in results["PMCPY-A"]}
    rows = [
        (label, r.direction, f"{r.seconds:.2f}s",
         f"{r.seconds / base[r.direction]:.2f}x")
        for label, rs in results.items()
        for r in rs
    ]
    print(render_table(
        f"checkpoint ({nprocs} procs): write + symmetric restart read",
        ["library", "direction", "modeled time", "vs PMCPY-A"],
        rows,
    ))
    print("\n(all reads are verified element-for-element against the "
          "generator — a failed restart raises)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 24)
